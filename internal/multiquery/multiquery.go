// Package multiquery implements the paper's §7 future-work extension:
// supporting multiple standing queries over the same stream population with
// shared composite filters.
//
// Each stream holds one filter constraint *per query*. A value change is
// reported iff it crosses the boundary of at least one non-silent
// per-query constraint — and the report is a single update message no
// matter how many queries it affects, which is where the sharing wins over
// running one independent cluster per query. Fraction-based tolerance is
// exploited per query exactly as in FT-NRP: out of each query's answer a
// few streams get silent (wide-open) entries, and out of the rest a few get
// shut entries, with the count/Fix_Error machinery restoring correctness.
package multiquery

import (
	"fmt"
	"math/rand"
	"sort"

	"adaptivefilters/internal/comm"
	"adaptivefilters/internal/core"
	"adaptivefilters/internal/filter"
	"adaptivefilters/internal/query"
)

// QuerySpec is one standing range query with its fraction tolerance.
type QuerySpec struct {
	Range query.Range
	Tol   core.FractionTolerance
}

// Manager hosts M range queries over n shared streams.
type Manager struct {
	specs []QuerySpec

	vals  []float64 // ground truth (driven by Deliver)
	table []float64 // server view
	known []bool

	// cons[s][q] is stream s's constraint for query q.
	cons   [][]filter.Constraint
	inside [][]bool

	subs []*sub
	ctr  comm.Counter
	sel  *rand.Rand
}

// sub is the per-query FT-NRP state.
type sub struct {
	spec  QuerySpec
	ans   map[int]bool
	fp    map[int]bool
	fn    map[int]bool
	count int
}

// NewManager creates the manager over the initial stream values.
func NewManager(initial []float64, specs []QuerySpec, seed int64) (*Manager, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("multiquery: need at least one query")
	}
	for i, s := range specs {
		if err := s.Tol.Validate(); err != nil {
			return nil, fmt.Errorf("multiquery: query %d: %w", i, err)
		}
	}
	m := &Manager{
		specs: specs,
		vals:  append([]float64(nil), initial...),
		table: make([]float64, len(initial)),
		known: make([]bool, len(initial)),
		sel:   rand.New(rand.NewSource(seed ^ 0x9E3779B9)),
	}
	m.cons = make([][]filter.Constraint, len(initial))
	m.inside = make([][]bool, len(initial))
	for s := range m.cons {
		m.cons[s] = make([]filter.Constraint, len(specs))
		m.inside[s] = make([]bool, len(specs))
	}
	for _, spec := range specs {
		m.subs = append(m.subs, &sub{
			spec: spec,
			ans:  map[int]bool{}, fp: map[int]bool{}, fn: map[int]bool{},
		})
	}
	return m, nil
}

// N returns the stream count.
func (m *Manager) N() int { return len(m.vals) }

// M returns the query count.
func (m *Manager) M() int { return len(m.specs) }

// Counter exposes message accounting.
func (m *Manager) Counter() *comm.Counter { return &m.ctr }

// Answer returns query qi's current answer set, sorted.
func (m *Manager) Answer(qi int) []int {
	out := make([]int, 0, len(m.subs[qi].ans))
	for id := range m.subs[qi].ans {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// SilentStreams returns the number of streams whose every per-query
// constraint is silent — fully shut-down sensors.
func (m *Manager) SilentStreams() int {
	n := 0
	for s := range m.cons {
		all := true
		for _, c := range m.cons[s] {
			if !c.Silent() {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

// Initialize probes every stream once (2n messages) and installs the
// composite filters (n install messages — one message carries all per-query
// entries).
func (m *Manager) Initialize() {
	m.ctr.SetPhase(comm.Init)
	m.probeAll()
	for qi := range m.subs {
		m.initQuery(qi)
	}
	m.installComposite()
	m.ctr.SetPhase(comm.Maintenance)
}

func (m *Manager) probeAll() {
	for s := range m.vals {
		m.probe(s)
	}
}

func (m *Manager) probe(s int) float64 {
	m.ctr.Add(comm.Probe, 1)
	m.ctr.Add(comm.ProbeReply, 1)
	m.table[s] = m.vals[s]
	m.known[s] = true
	for qi := range m.specs {
		m.inside[s][qi] = m.cons[s][qi].Contains(m.vals[s])
	}
	return m.vals[s]
}

// initQuery computes query qi's answer and silent assignments from the
// (fresh) table.
func (m *Manager) initQuery(qi int) {
	sb := m.subs[qi]
	sb.ans, sb.fp, sb.fn = map[int]bool{}, map[int]bool{}, map[int]bool{}
	sb.count = 0
	var ins, outs []int
	for s, v := range m.table {
		if sb.spec.Range.Contains(v) {
			sb.ans[s] = true
			ins = append(ins, s)
		} else {
			outs = append(outs, s)
		}
	}
	nPlus := sb.spec.Tol.MaxFalsePositives(len(ins))
	nMinus := sb.spec.Tol.MaxFalseNegatives(len(ins))
	score := func(id int) float64 { return sb.spec.Range.BoundaryDist(m.table[id]) }
	for _, id := range pickBoundary(ins, score, nPlus) {
		sb.fp[id] = true
	}
	for _, id := range pickBoundary(outs, score, nMinus) {
		sb.fn[id] = true
	}
}

// pickBoundary selects the n ids with the smallest score (ties by id).
func pickBoundary(ids []int, score func(int) float64, n int) []int {
	if n <= 0 {
		return nil
	}
	if n > len(ids) {
		n = len(ids)
	}
	sorted := append([]int(nil), ids...)
	sort.Slice(sorted, func(a, b int) bool {
		sa, sb := score(sorted[a]), score(sorted[b])
		if sa != sb {
			return sa < sb
		}
		return sorted[a] < sorted[b]
	})
	return sorted[:n]
}

// installComposite pushes every stream's per-query constraint vector in one
// install message per stream.
func (m *Manager) installComposite() {
	m.ctr.Add(comm.Install, uint64(m.N()))
	for s := range m.cons {
		m.installStream(s)
	}
}

func (m *Manager) installStream(s int) {
	for qi, sb := range m.subs {
		switch {
		case sb.fp[s]:
			m.cons[s][qi] = filter.WideOpen()
		case sb.fn[s]:
			m.cons[s][qi] = filter.Shut()
		default:
			m.cons[s][qi] = sb.spec.Range.Constraint()
		}
		m.inside[s][qi] = m.cons[s][qi].Contains(m.vals[s])
	}
}

// reinstall updates one stream's constraint vector (1 install message).
func (m *Manager) reinstall(s int) {
	m.ctr.Add(comm.Install, 1)
	m.installStream(s)
}

// Deliver applies a true value change; the stream reports iff any
// non-silent per-query constraint boundary was crossed (one update message
// total), and every query's maintenance then runs against the new value.
func (m *Manager) Deliver(s int, v float64) {
	m.vals[s] = v
	crossed := false
	for qi := range m.specs {
		c := m.cons[s][qi]
		if c.Silent() {
			continue
		}
		now := c.Contains(v)
		if now != m.inside[s][qi] {
			m.inside[s][qi] = now
			crossed = true
		}
	}
	if !crossed {
		return
	}
	m.ctr.Add(comm.Update, 1)
	m.table[s] = v
	m.known[s] = true
	for qi := range m.subs {
		m.maintain(qi, s, v)
	}
}

// maintain is FT-NRP's maintenance phase for one query.
func (m *Manager) maintain(qi, s int, v float64) {
	sb := m.subs[qi]
	m.ctr.AddServerOps(1)
	// Silent entries never generate reports, but the report may have been
	// caused by another query's constraint; only act when this query's own
	// constraint is live (the paper's per-filter semantics).
	if m.cons[s][qi].Silent() {
		return
	}
	if sb.spec.Range.Contains(v) {
		if !sb.ans[s] {
			sb.ans[s] = true
			sb.count++
		}
		return
	}
	if !sb.ans[s] {
		return
	}
	delete(sb.ans, s)
	if sb.count > 0 {
		sb.count--
		return
	}
	m.fixError(qi)
}

// fixError mirrors FT-NRP's Fix_Error for one query; probes cost the usual
// two messages and constraint changes one install each.
func (m *Manager) fixError(qi int) {
	sb := m.subs[qi]
	if len(sb.fp) > 0 {
		sy := minKey(sb.fp)
		vy := m.probe(sy)
		delete(sb.fp, sy)
		if sb.spec.Range.Contains(vy) {
			sb.ans[sy] = true
			m.reinstall(sy)
			return
		}
		delete(sb.ans, sy)
		m.reinstall(sy)
	}
	if len(sb.fn) > 0 {
		sz := minKey(sb.fn)
		vz := m.probe(sz)
		delete(sb.fn, sz)
		if sb.spec.Range.Contains(vz) {
			sb.ans[sz] = true
		}
		m.reinstall(sz)
	}
}

func minKey(m map[int]bool) int {
	best, ok := 0, false
	for id := range m {
		if !ok || id < best {
			best, ok = id, true
		}
	}
	return best
}
