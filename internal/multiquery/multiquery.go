// Package multiquery implements the paper's §7 future-work extension:
// supporting multiple standing queries over the same stream population with
// shared composite filters.
//
// The composite fabric itself — per-stream constraint vectors, the shared
// value table, the single message counter, and the per-query Host views the
// protocols program against — lives in server.Composite, where the sharded
// runtime hosts it too (runtime.TenantSpec.Queries). Manager is the thin
// single-population compatibility façade over that fabric: it fixes the
// protocol choice to FT-NRP range queries, derives per-query seeds from one
// base seed, and keeps the original synchronous Deliver-driven surface.
package multiquery

import (
	"fmt"

	"adaptivefilters/internal/comm"
	"adaptivefilters/internal/core"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/sim"
)

// querySeedStream labels the per-query seed derivation from the manager's
// base seed (sim.DeriveSeed), so two queries sharing a manager never share
// a selection-RNG stream.
const querySeedStream int64 = 0x9E37

// QuerySpec is one standing range query with its fraction tolerance.
type QuerySpec struct {
	Range query.Range
	Tol   core.FractionTolerance
}

// Manager hosts M range queries over n shared streams.
type Manager struct {
	comp *server.Composite
}

// NewManager creates the manager over the initial stream values. Each
// query's protocol draws its selection randomness from a seed derived from
// the given base seed and the query index.
func NewManager(initial []float64, specs []QuerySpec, seed int64) (*Manager, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("multiquery: need at least one query")
	}
	for i, s := range specs {
		if err := s.Tol.Validate(); err != nil {
			return nil, fmt.Errorf("multiquery: query %d: %w", i, err)
		}
	}
	m := &Manager{comp: server.NewComposite(initial)}
	for qi, spec := range specs {
		spec := spec
		// ReinitNever: re-initialization would cost a per-query ProbeAll,
		// defeating the shared-probe economics; depleted queries degrade to
		// ZT-NRP exactly as the single-query protocol would.
		m.comp.AddQuery(fmt.Sprintf("q%d", qi), int64(qi), func(h server.Host) server.Protocol {
			return core.NewFTNRP(h, spec.Range, core.FTNRPConfig{
				Tol:       spec.Tol,
				Selection: core.SelectBoundaryNearest,
				Seed:      sim.DeriveSeed(seed, querySeedStream, int64(qi)),
				Reinit:    core.ReinitNever,
			})
		})
	}
	return m, nil
}

// N returns the stream count.
func (m *Manager) N() int { return m.comp.N() }

// M returns the query count.
func (m *Manager) M() int { return m.comp.QuerySlots() }

// Counter exposes message accounting.
func (m *Manager) Counter() *comm.Counter { return m.comp.Counter() }

// Answer returns query qi's current answer set, sorted.
func (m *Manager) Answer(qi int) []int { return m.comp.Answer(qi) }

// SilentStreams returns the number of streams whose every per-query
// constraint is silent — fully shut-down sensors.
func (m *Manager) SilentStreams() int { return m.comp.SilentStreams() }

// Initialize probes every stream once (2n messages) on behalf of all
// queries, computes each query's answer and silent assignments from that
// shared snapshot, and installs the composite filters (n install messages —
// one message carries all per-query entries).
func (m *Manager) Initialize() { m.comp.Initialize() }

// Deliver applies a true value change; the stream reports iff any
// non-silent per-query constraint boundary was crossed (one update message
// total), and every query's maintenance then runs against the new value.
func (m *Manager) Deliver(s int, v float64) { m.comp.Deliver(s, v) }
