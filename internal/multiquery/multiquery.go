// Package multiquery implements the paper's §7 future-work extension:
// supporting multiple standing queries over the same stream population with
// shared composite filters.
//
// Each stream holds one filter constraint *per query*. A value change is
// reported iff it crosses the boundary of at least one non-silent
// per-query constraint — and the report is a single update message no
// matter how many queries it affects, which is where the sharing wins over
// running one independent cluster per query. Per-query protocol state is
// not re-implemented here: every query is an ordinary core.FTNRP instance
// programming against a server.Host view whose probes refresh the shared
// value table and whose installs update that query's entry in the
// composite filter. Only the composite fabric — the per-stream constraint
// vectors, the shared table and the single message counter — lives in the
// Manager.
package multiquery

import (
	"fmt"

	"adaptivefilters/internal/comm"
	"adaptivefilters/internal/core"
	"adaptivefilters/internal/filter"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/sim"
	"adaptivefilters/internal/stream"
)

// querySeedStream labels the per-query seed derivation from the manager's
// base seed (sim.DeriveSeed), so two queries sharing a manager never share
// a selection-RNG stream.
const querySeedStream int64 = 0x9E37

// QuerySpec is one standing range query with its fraction tolerance.
type QuerySpec struct {
	Range query.Range
	Tol   core.FractionTolerance
}

// Manager hosts M range queries over n shared streams.
type Manager struct {
	specs []QuerySpec

	vals  []float64 // ground truth (driven by Deliver)
	table []float64 // server view
	known []bool

	// cons[s][q] is stream s's constraint for query q.
	cons   [][]filter.Constraint
	inside [][]bool

	subs []*core.FTNRP
	ctr  comm.Counter
}

// NewManager creates the manager over the initial stream values. Each
// query's protocol draws its selection randomness from a seed derived from
// the given base seed and the query index.
func NewManager(initial []float64, specs []QuerySpec, seed int64) (*Manager, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("multiquery: need at least one query")
	}
	for i, s := range specs {
		if err := s.Tol.Validate(); err != nil {
			return nil, fmt.Errorf("multiquery: query %d: %w", i, err)
		}
	}
	m := &Manager{
		specs: specs,
		vals:  append([]float64(nil), initial...),
		table: make([]float64, len(initial)),
		known: make([]bool, len(initial)),
	}
	m.cons = make([][]filter.Constraint, len(initial))
	m.inside = make([][]bool, len(initial))
	for s := range m.cons {
		m.cons[s] = make([]filter.Constraint, len(specs))
		m.inside[s] = make([]bool, len(specs))
	}
	for qi, spec := range specs {
		// ReinitNever: re-initialization would cost a per-query ProbeAll,
		// defeating the shared-probe economics; depleted queries degrade to
		// ZT-NRP exactly as the single-query protocol would.
		m.subs = append(m.subs, core.NewFTNRP(&queryView{m: m, qi: qi}, spec.Range, core.FTNRPConfig{
			Tol:       spec.Tol,
			Selection: core.SelectBoundaryNearest,
			Seed:      sim.DeriveSeed(seed, querySeedStream, int64(qi)),
			Reinit:    core.ReinitNever,
		}))
	}
	return m, nil
}

// N returns the stream count.
func (m *Manager) N() int { return len(m.vals) }

// M returns the query count.
func (m *Manager) M() int { return len(m.specs) }

// Counter exposes message accounting.
func (m *Manager) Counter() *comm.Counter { return &m.ctr }

// Answer returns query qi's current answer set, sorted.
func (m *Manager) Answer(qi int) []int { return m.subs[qi].Answer() }

// SilentStreams returns the number of streams whose every per-query
// constraint is silent — fully shut-down sensors.
func (m *Manager) SilentStreams() int {
	n := 0
	for s := range m.cons {
		all := true
		for _, c := range m.cons[s] {
			if !c.Silent() {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

// Initialize probes every stream once (2n messages) on behalf of all
// queries, computes each query's answer and silent assignments from that
// shared snapshot, and installs the composite filters (n install messages —
// one message carries all per-query entries).
func (m *Manager) Initialize() {
	m.ctr.SetPhase(comm.Init)
	m.probeAll()
	for _, sub := range m.subs {
		sub.InitializeFromTable(m.table)
	}
	m.installComposite()
	m.ctr.SetPhase(comm.Maintenance)
}

func (m *Manager) probeAll() {
	for s := range m.vals {
		m.probe(s)
	}
}

// probe refreshes the shared table from ground truth (one Probe plus one
// ProbeReply message) and re-records the stream's side of every per-query
// constraint.
func (m *Manager) probe(s int) float64 {
	m.ctr.Add(comm.Probe, 1)
	m.ctr.Add(comm.ProbeReply, 1)
	m.table[s] = m.vals[s]
	m.known[s] = true
	for qi := range m.specs {
		m.inside[s][qi] = m.cons[s][qi].Contains(m.vals[s])
	}
	return m.vals[s]
}

// installComposite pushes every stream's per-query constraint vector in one
// install message per stream, asking each query's protocol which filter it
// wants deployed.
func (m *Manager) installComposite() {
	m.ctr.Add(comm.Install, uint64(m.N()))
	for s := range m.cons {
		for qi, sub := range m.subs {
			c, _ := sub.FilterFor(s, m.table[s])
			m.setConstraint(s, qi, c)
		}
	}
}

// setConstraint updates one entry of the composite filter and re-records
// the stream's side of it against ground truth. The multiquery model has no
// install handshake: entries are rewritten only right after a probe of the
// same stream, when table and true value agree (see DESIGN.md §3).
func (m *Manager) setConstraint(s, qi int, c filter.Constraint) {
	m.cons[s][qi] = c
	m.inside[s][qi] = c.Contains(m.vals[s])
}

// Deliver applies a true value change; the stream reports iff any
// non-silent per-query constraint boundary was crossed (one update message
// total), and every query's maintenance then runs against the new value.
func (m *Manager) Deliver(s int, v float64) {
	m.vals[s] = v
	crossed := false
	for qi := range m.specs {
		c := m.cons[s][qi]
		if c.Silent() {
			continue
		}
		now := c.Contains(v)
		if now != m.inside[s][qi] {
			m.inside[s][qi] = now
			crossed = true
		}
	}
	if !crossed {
		return
	}
	m.ctr.Add(comm.Update, 1)
	m.table[s] = v
	m.known[s] = true
	for qi, sub := range m.subs {
		// Silent entries never generate reports, but the report may have
		// been caused by another query's constraint; only run a query's
		// maintenance when its own constraint is live (the paper's
		// per-filter semantics). The skipped query still pays the lookup.
		if m.cons[s][qi].Silent() {
			m.ctr.AddServerOps(1)
			continue
		}
		sub.HandleUpdate(s, v)
	}
}

// queryView adapts one query's slot in the composite filter fabric to the
// server.Host interface core.FTNRP programs against: probes refresh the
// shared table (and cost the usual two messages on the shared counter),
// installs rewrite this query's constraint entry (one install message), and
// server-side work lands on the shared computation metric.
type queryView struct {
	m  *Manager
	qi int
}

var _ server.Host = (*queryView)(nil)

// N implements server.Host.
func (v *queryView) N() int { return v.m.N() }

// Probe implements server.Host over the shared table.
func (v *queryView) Probe(id stream.ID) float64 { return v.m.probe(id) }

// ProbeIf implements server.Host; FT-NRP never conditionally probes, but
// the view stays a complete host. The probe is always counted, the reply
// only on a hit, matching server.Cluster.ProbeIf.
func (v *queryView) ProbeIf(id stream.ID, cons filter.Constraint) (float64, bool) {
	v.m.ctr.Add(comm.Probe, 1)
	if !cons.Contains(v.m.vals[id]) {
		return 0, false
	}
	v.m.ctr.Add(comm.ProbeReply, 1)
	v.m.table[id] = v.m.vals[id]
	v.m.known[id] = true
	return v.m.vals[id], true
}

// ProbeAll implements server.Host (2n messages on the shared counter).
func (v *queryView) ProbeAll() []float64 {
	v.m.probeAll()
	return v.TableValues()
}

// ProbeAllInto implements server.Host reusing dst for the table snapshot.
func (v *queryView) ProbeAllInto(dst []float64) []float64 {
	v.m.probeAll()
	if cap(dst) < len(v.m.table) {
		dst = make([]float64, len(v.m.table))
	}
	dst = dst[:len(v.m.table)]
	copy(dst, v.m.table)
	return dst
}

// ProbeBatch implements server.Host: 2·len(ids) messages on the shared
// counter, one batched update per kind.
func (v *queryView) ProbeBatch(ids []stream.ID) {
	if len(ids) == 0 {
		return
	}
	v.m.ctr.Add(comm.Probe, uint64(len(ids)))
	v.m.ctr.Add(comm.ProbeReply, uint64(len(ids)))
	for _, id := range ids {
		v.m.table[id] = v.m.vals[id]
		v.m.known[id] = true
		for qi := range v.m.specs {
			v.m.inside[id][qi] = v.m.cons[id][qi].Contains(v.m.vals[id])
		}
	}
}

// Install rewrites this query's entry in stream id's composite filter for
// one install message. expectInside is ignored: the multiquery model has no
// install handshake (the entry is recomputed against ground truth).
func (v *queryView) Install(id stream.ID, cons filter.Constraint, _ bool) {
	v.m.ctr.Add(comm.Install, 1)
	v.m.setConstraint(id, v.qi, cons)
}

// InstallAll rewrites this query's entry at every stream (n installs).
func (v *queryView) InstallAll(cons filter.Constraint) {
	v.m.ctr.Add(comm.Install, uint64(v.m.N()))
	for s := range v.m.cons {
		v.m.setConstraint(s, v.qi, cons)
	}
}

// Table implements server.Host.
func (v *queryView) Table(id stream.ID) (float64, bool) { return v.m.table[id], v.m.known[id] }

// TableValues implements server.Host.
func (v *queryView) TableValues() []float64 {
	out := make([]float64, len(v.m.table))
	copy(out, v.m.table)
	return out
}

// AddServerOps implements server.Host on the shared computation metric.
func (v *queryView) AddServerOps(n int) { v.m.ctr.AddServerOps(uint64(n)) }
