package comm

import (
	"strings"
	"testing"

	"adaptivefilters/internal/snapshot"
)

func TestCounterStartsInInitPhase(t *testing.T) {
	var c Counter
	if c.Phase() != Init {
		t.Fatalf("Phase() = %v, want Init", c.Phase())
	}
	c.Add(Update, 3)
	if got := c.Get(Init, Update); got != 3 {
		t.Fatalf("Get(Init, Update) = %d, want 3", got)
	}
	if got := c.Maintenance(); got != 0 {
		t.Fatalf("Maintenance() = %d, want 0", got)
	}
}

func TestCounterPhaseSwitch(t *testing.T) {
	var c Counter
	c.Add(Probe, 2)
	c.SetPhase(Maintenance)
	c.Add(Probe, 5)
	c.Add(Install, 7)
	if got := c.Get(Init, Probe); got != 2 {
		t.Fatalf("init probes = %d, want 2", got)
	}
	if got := c.Get(Maintenance, Probe); got != 5 {
		t.Fatalf("maintenance probes = %d, want 5", got)
	}
	if got := c.Maintenance(); got != 12 {
		t.Fatalf("Maintenance() = %d, want 12", got)
	}
	if got := c.Total(); got != 14 {
		t.Fatalf("Total() = %d, want 14", got)
	}
}

func TestCounterPhaseTotals(t *testing.T) {
	var c Counter
	for _, k := range Kinds() {
		c.Add(k, 1)
	}
	if got := c.PhaseTotal(Init); got != uint64(len(Kinds())) {
		t.Fatalf("PhaseTotal(Init) = %d, want %d", got, len(Kinds()))
	}
}

func TestCounterReset(t *testing.T) {
	var c Counter
	c.SetPhase(Maintenance)
	c.Add(Update, 9)
	c.AddServerOps(5)
	c.Reset()
	if c.Total() != 0 || c.ServerOps != 0 || c.Phase() != Init {
		t.Fatalf("Reset left state: %+v", c)
	}
}

func TestCounterServerOps(t *testing.T) {
	var c Counter
	c.AddServerOps(10)
	c.AddServerOps(5)
	if c.ServerOps != 15 {
		t.Fatalf("ServerOps = %d, want 15", c.ServerOps)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Update:     "update",
		Probe:      "probe",
		ProbeReply: "probe-reply",
		Install:    "install",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind string = %q", got)
	}
}

func TestPhaseStrings(t *testing.T) {
	if Init.String() != "init" || Maintenance.String() != "maintenance" {
		t.Fatalf("phase strings = %q, %q", Init.String(), Maintenance.String())
	}
}

func TestCounterString(t *testing.T) {
	var c Counter
	c.SetPhase(Maintenance)
	c.Add(Update, 4)
	s := c.String()
	for _, want := range []string{"maint=4", "update=4", "serverOps=0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestCounterStateRoundTrip(t *testing.T) {
	var c Counter
	c.Add(Update, 3)
	c.Add(Probe, 9)
	c.SetPhase(Maintenance)
	c.Add(Install, 4)
	c.Add(ProbeReply, 1)
	c.AddServerOps(123)

	w := snapshot.NewWriter()
	c.ExportState(w)

	var got Counter
	got.Add(Update, 999) // must be overwritten
	r := snapshot.NewReader(w.Bytes())
	if err := got.ImportState(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round-trip = %+v, want %+v", got, c)
	}
	if got.Phase() != Maintenance {
		t.Fatalf("phase = %v, want Maintenance", got.Phase())
	}
}

func TestCounterImportRejects(t *testing.T) {
	var c Counter
	c.Add(Update, 1)
	w := snapshot.NewWriter()
	c.ExportState(w)
	data := w.Bytes()

	for cut := 0; cut < len(data); cut += 8 {
		var got Counter
		if err := got.ImportState(snapshot.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Corrupt the phase discriminator.
	bad := append([]byte(nil), data...)
	bad[0] = 0xFF
	var got Counter
	if err := got.ImportState(snapshot.NewReader(bad)); err == nil {
		t.Fatal("invalid phase accepted")
	}
	// Corrupt the kind dimension.
	bad2 := append([]byte(nil), data...)
	bad2[16] = 0x7F
	if err := got.ImportState(snapshot.NewReader(bad2)); err == nil {
		t.Fatal("mismatched dimensions accepted")
	}
}
