// Package comm models the messages exchanged between stream sources and the
// central server, and counts them.
//
// The paper's performance metric (Figures 9–15) is "the number of
// maintenance messages required during the lifetime of the query", where an
// update from an unfiltered stream also counts as one maintenance message.
// Counters therefore keep two buckets: one for the time-t0 initialization
// phase (excluded from the paper's metric) and one for everything after,
// including protocol-triggered re-initializations.
package comm

import (
	"fmt"
	"strings"

	"adaptivefilters/internal/snapshot"
)

// Kind enumerates message types.
type Kind int

const (
	// Update is a value report from a stream to the server (a filter
	// violation, an unfiltered update, or an install-mismatch report).
	Update Kind = iota
	// Probe is a server-to-stream request for the current value.
	Probe
	// ProbeReply is a stream's answer to a Probe.
	ProbeReply
	// Install is a server-to-stream filter (re)configuration.
	Install
	numKinds
)

// String returns the lowercase message-kind name.
func (k Kind) String() string {
	switch k {
	case Update:
		return "update"
	case Probe:
		return "probe"
	case ProbeReply:
		return "probe-reply"
	case Install:
		return "install"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists all message kinds in order.
func Kinds() []Kind { return []Kind{Update, Probe, ProbeReply, Install} }

// Phase distinguishes the initial t0 setup from steady-state maintenance.
type Phase int

const (
	// Init is the time-t0 initialization phase (excluded from the paper's
	// maintenance-message metric).
	Init Phase = iota
	// Maintenance is everything after initialization, including
	// re-initializations triggered by the protocols themselves.
	Maintenance
	numPhases
)

// String returns the phase name.
func (p Phase) String() string {
	if p == Init {
		return "init"
	}
	return "maintenance"
}

// Counter tallies messages by phase and kind. The zero value is ready to use
// and starts in the Init phase.
type Counter struct {
	phase  Phase
	counts [numPhases][numKinds]uint64
	// ServerOps is a proxy for server computation: protocols add the size of
	// each ranking / scanning pass they perform. The paper's abstract claims
	// savings in "server computation" as well as communication; the
	// server-cost study (experiment.ServerCost, DESIGN.md §2) substantiates
	// that claim.
	ServerOps uint64
}

// SetPhase switches the bucket subsequent messages are charged to.
func (c *Counter) SetPhase(p Phase) { c.phase = p }

// Phase returns the current accounting phase.
func (c *Counter) Phase() Phase { return c.phase }

// Add charges n messages of kind k to the current phase.
func (c *Counter) Add(k Kind, n uint64) { c.counts[c.phase][k] += n }

// AddServerOps records server-side work (element touches during ranking).
func (c *Counter) AddServerOps(n uint64) { c.ServerOps += n }

// Get returns the count for one phase and kind.
func (c *Counter) Get(p Phase, k Kind) uint64 { return c.counts[p][k] }

// PhaseTotal returns all messages charged to phase p.
func (c *Counter) PhaseTotal(p Phase) uint64 {
	var t uint64
	for k := Kind(0); k < numKinds; k++ {
		t += c.counts[p][k]
	}
	return t
}

// Maintenance returns the paper's headline metric: total messages outside
// the t0 initialization phase.
func (c *Counter) Maintenance() uint64 { return c.PhaseTotal(Maintenance) }

// Total returns all messages in both phases.
func (c *Counter) Total() uint64 { return c.PhaseTotal(Init) + c.PhaseTotal(Maintenance) }

// Reset zeroes the counter and returns it to the Init phase.
func (c *Counter) Reset() { *c = Counter{} }

// Merge adds other's counts (every phase and kind, plus server ops) into c.
// The runtime layer uses it to roll per-tenant counters up into node-level
// totals; c's own phase is left untouched.
func (c *Counter) Merge(other *Counter) {
	for p := Phase(0); p < numPhases; p++ {
		for k := Kind(0); k < numKinds; k++ {
			c.counts[p][k] += other.counts[p][k]
		}
	}
	c.ServerOps += other.ServerOps
}

// ExportState appends the counter — phase, every bucket, server ops — to a
// snapshot. The bucket dimensions are written explicitly so a snapshot from
// a build with different message kinds is rejected rather than misread.
func (c *Counter) ExportState(w *snapshot.Writer) {
	w.Int64(int64(c.phase))
	w.Int64(int64(numPhases))
	w.Int64(int64(numKinds))
	for p := Phase(0); p < numPhases; p++ {
		for k := Kind(0); k < numKinds; k++ {
			w.Uint64(c.counts[p][k])
		}
	}
	w.Uint64(c.ServerOps)
}

// ImportState restores a counter written by ExportState, overwriting the
// receiver. It validates the phase and bucket dimensions and never panics on
// corrupted input.
func (c *Counter) ImportState(r *snapshot.Reader) error {
	phase := r.Int64()
	np := r.Int64()
	nk := r.Int64()
	if err := r.Err(); err != nil {
		return err
	}
	if phase < 0 || phase >= int64(numPhases) {
		return fmt.Errorf("comm: snapshot holds invalid phase %d", phase)
	}
	if np != int64(numPhases) || nk != int64(numKinds) {
		return fmt.Errorf("comm: snapshot counter dimensions %dx%d, want %dx%d",
			np, nk, int64(numPhases), int64(numKinds))
	}
	var restored Counter
	restored.phase = Phase(phase)
	for p := Phase(0); p < numPhases; p++ {
		for k := Kind(0); k < numKinds; k++ {
			restored.counts[p][k] = r.Uint64()
		}
	}
	restored.ServerOps = r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	*c = restored
	return nil
}

// String renders a compact human-readable summary.
func (c *Counter) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "init=%d maint=%d [", c.PhaseTotal(Init), c.Maintenance())
	for i, k := range Kinds() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", k, c.counts[Maintenance][k])
	}
	fmt.Fprintf(&b, "] serverOps=%d", c.ServerOps)
	return b.String()
}
