module adaptivefilters

go 1.24
