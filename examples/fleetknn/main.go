// Fleetknn runs the paper's continuous k-NN scenario (location monitoring,
// §1/§3.2) in two flavors:
//
//  1. 1-D: vehicles on a highway (positions are mile markers); a dispatcher
//     continuously wants the k vehicles nearest an incident with
//     fraction-based tolerance — FT-RP against the zero-tolerance ZT-RP.
//  2. 2-D: the multidim extension — delivery drones over a city with disk
//     filters and rank-based tolerance (RTP2D).
//
// Run with: go run ./examples/fleetknn
package main

import (
	"fmt"
	"math/rand"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/multidim"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/server"
)

func main() {
	highway()
	fmt.Println()
	drones()
}

func highway() {
	const (
		n        = 2000
		k        = 25
		incident = 500.0 // mile marker of the incident
		steps    = 100000
	)
	rng := rand.New(rand.NewSource(11))
	positions := make([]float64, n)
	for i := range positions {
		positions[i] = rng.Float64() * 1000
	}
	fmt.Printf("1-D fleet: %d vehicles, dispatcher wants the %d nearest to mile %g\n",
		n, k, incident)

	run := func(name string, build func(c *server.Cluster) server.Protocol) uint64 {
		c := server.NewCluster(positions)
		p := build(c)
		c.SetProtocol(p)
		c.Initialize()
		r := rand.New(rand.NewSource(77)) // identical movement for both runs
		cur := append([]float64(nil), positions...)
		for s := 0; s < steps; s++ {
			id := r.Intn(n)
			cur[id] += r.NormFloat64() * 2 // vehicles creep along the road
			c.Deliver(id, cur[id])
		}
		fmt.Printf("  %-28s %8d maintenance messages, answer size %d\n",
			name, c.Counter().Maintenance(), len(p.Answer()))
		return c.Counter().Maintenance()
	}

	zt := run("ZT-RP (exact)", func(c *server.Cluster) server.Protocol {
		return core.NewZTRP(c, query.At(incident), k)
	})
	tol := core.FractionTolerance{EpsPlus: 0.3, EpsMinus: 0.3}
	ft := run(fmt.Sprintf("FT-RP (%v)", tol), func(c *server.Cluster) server.Protocol {
		return core.NewFTRP(c, query.At(incident), k, core.DefaultFTRPConfig(tol))
	})
	fmt.Printf("  tolerance saves %.1fx communication\n", float64(zt)/float64(ft))
}

func drones() {
	const (
		n     = 400
		k     = 8
		steps = 40000
	)
	rng := rand.New(rand.NewSource(13))
	pts := make([]multidim.Point, n)
	for i := range pts {
		pts[i] = multidim.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	depot := multidim.Point{X: 50, Y: 50}
	tol := core.RankTolerance{K: k, R: 6}
	fmt.Printf("2-D fleet (multidim extension): %d drones, %d nearest to the depot, rank slack %d\n",
		n, k, tol.R)

	c := multidim.NewCluster(pts)
	p := multidim.NewRTP2D(c, depot, tol)
	p.Initialize()
	cur := append([]multidim.Point(nil), pts...)
	for s := 0; s < steps; s++ {
		id := rng.Intn(n)
		cur[id].X += rng.NormFloat64() * 0.5
		cur[id].Y += rng.NormFloat64() * 0.5
		c.Deliver(id, cur[id])
	}
	fmt.Printf("  %d moves → %d maintenance messages (%.1f%% suppressed), %d bound deployments\n",
		steps, c.Counter().Maintenance(),
		100*(1-float64(c.Counter().Maintenance())/float64(steps)), p.Deploys)
	fmt.Printf("  drones on call: %v inside disk %v\n", p.Answer(), p.Bound())
}
