// Fleetknn runs the paper's continuous k-NN scenario (location monitoring,
// §1/§3.2) in two flavors:
//
//  1. 1-D: vehicles on a highway (positions are mile markers); a dispatcher
//     continuously wants the k vehicles nearest an incident with
//     fraction-based tolerance — FT-RP against the zero-tolerance ZT-RP.
//  2. 2-D: a moving-objects fleet on the real runtime — delivery drones
//     over a city hosted as a spatial tenant on a sharded runtime.Node,
//     with disk filters and rank-based tolerance (RTP2D). The same event
//     sequence is ingested at two shard counts to show the spatial plane's
//     determinism guarantee: answers and message accounting are identical.
//
// Run with: go run ./examples/fleetknn
package main

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/filter"
	"adaptivefilters/internal/multidim"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/runtime"
	"adaptivefilters/internal/server"
)

func main() {
	highway()
	fmt.Println()
	drones()
}

func highway() {
	const (
		n        = 2000
		k        = 25
		incident = 500.0 // mile marker of the incident
		steps    = 100000
	)
	rng := rand.New(rand.NewSource(11))
	positions := make([]float64, n)
	for i := range positions {
		positions[i] = rng.Float64() * 1000
	}
	fmt.Printf("1-D fleet: %d vehicles, dispatcher wants the %d nearest to mile %g\n",
		n, k, incident)

	run := func(name string, build func(c *server.Cluster) server.Protocol) uint64 {
		c := server.NewCluster(positions)
		p := build(c)
		c.SetProtocol(p)
		c.Initialize()
		r := rand.New(rand.NewSource(77)) // identical movement for both runs
		cur := append([]float64(nil), positions...)
		for s := 0; s < steps; s++ {
			id := r.Intn(n)
			cur[id] += r.NormFloat64() * 2 // vehicles creep along the road
			c.Deliver(id, cur[id])
		}
		fmt.Printf("  %-28s %8d maintenance messages, answer size %d\n",
			name, c.Counter().Maintenance(), len(p.Answer()))
		return c.Counter().Maintenance()
	}

	zt := run("ZT-RP (exact)", func(c *server.Cluster) server.Protocol {
		return core.NewZTRP(c, query.At(incident), k)
	})
	tol := core.FractionTolerance{EpsPlus: 0.3, EpsMinus: 0.3}
	ft := run(fmt.Sprintf("FT-RP (%v)", tol), func(c *server.Cluster) server.Protocol {
		return core.NewFTRP(c, query.At(incident), k, core.DefaultFTRPConfig(tol))
	})
	fmt.Printf("  tolerance saves %.1fx communication\n", float64(zt)/float64(ft))
}

func drones() {
	const (
		n     = 400
		k     = 8
		steps = 40000
	)
	rng := rand.New(rand.NewSource(13))
	pts := make([]filter.Point, n)
	for i := range pts {
		pts[i] = filter.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	depot := filter.Point{X: 50, Y: 50}
	tol := core.RankTolerance{K: k, R: 6}
	fmt.Printf("2-D fleet on the runtime: %d drones, %d nearest to the depot, rank slack %d\n",
		n, k, tol.R)

	// The fleet is an ordinary spatial tenant: initial locations plus an
	// RTP2D factory, hosted on a sharded node exactly like the 1-D tenants
	// cmd/streamsim runs.
	spec := runtime.TenantSpec{
		Name:           "drones",
		SpatialInitial: pts,
		NewSpatial: func(h server.SpatialHost, seed int64) server.SpatialProtocol {
			return multidim.NewRTP2D(h, depot, tol)
		},
	}
	// One deterministic movement batch, ingested at two shard counts.
	mkEvents := func() []runtime.Event {
		r := rand.New(rand.NewSource(29))
		cur := append([]filter.Point(nil), pts...)
		evs := make([]runtime.Event, 0, steps)
		for s := 0; s < steps; s++ {
			id := r.Intn(n)
			cur[id].X += r.NormFloat64() * 0.5
			cur[id].Y += r.NormFloat64() * 0.5
			evs = append(evs, runtime.Event{Stream: id, Value: cur[id].X, Y: cur[id].Y})
		}
		return evs
	}
	run := func(shards int) (answer []int, maint uint64) {
		node, err := runtime.NewNode(runtime.Config{Shards: shards, Seed: 42},
			[]runtime.TenantSpec{spec})
		if err != nil {
			panic(err)
		}
		if err := node.Start(context.Background()); err != nil {
			panic(err)
		}
		defer node.Stop()
		if err := node.Ingest(mkEvents()); err != nil {
			panic(err)
		}
		if err := node.Drain(); err != nil {
			panic(err)
		}
		return node.Answer(0), node.Counter(0).Maintenance()
	}

	ans1, maint1 := run(1)
	ans4, maint4 := run(4)
	fmt.Printf("  %d moves → %d maintenance messages (%.1f%% suppressed)\n",
		steps, maint1, 100*(1-float64(maint1)/float64(steps)))
	fmt.Printf("  drones on call: %v\n", ans1)
	if reflect.DeepEqual(ans1, ans4) && maint1 == maint4 {
		fmt.Printf("  shards=1 and shards=4 agree bit for bit (determinism guarantee)\n")
	} else {
		fmt.Printf("  DIVERGENCE between shard counts: %v/%d vs %v/%d\n", ans1, maint1, ans4, maint4)
	}
}
