// Sensornet models the paper's sensor-network reading of fraction-based
// tolerance (§5.1.1): a field of temperature sensors, a standing range
// query ("which sensors read between 400 and 600?"), and silent
// false-positive/false-negative filters that effectively shut sensors down
// — "potentially beneficial for sensors with limited battery power".
//
// It also demonstrates the multi-query extension: several consoles watch
// different temperature bands over the same sensors with shared composite
// filters.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/multiquery"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/workload"
)

func main() {
	cfg := workload.SyntheticConfig{
		N: 1000, Lo: 0, Hi: 1000, MeanGap: 20, Sigma: 40,
		Horizon: 1000, Seed: 9,
	}
	w, err := workload.NewSynthetic(cfg)
	if err != nil {
		panic(err)
	}
	rng := query.NewRange(400, 600)
	tol := core.FractionTolerance{EpsPlus: 0.3, EpsMinus: 0.3}

	// --- single query: count how many sensors the tolerance shuts down ----
	initial := w.Initial()
	cluster := server.NewCluster(initial)
	proto := core.NewFTNRP(cluster, rng, core.FTNRPConfig{
		Tol: tol, Selection: core.SelectBoundaryNearest, Seed: 2,
	})
	cluster.SetProtocol(proto)
	cluster.Initialize()

	silent := 0
	for id := 0; id < cluster.N(); id++ {
		if cluster.Constraint(id).Silent() {
			silent++
		}
	}
	fmt.Printf("single range query %v with %v over %d sensors\n", rng, tol, cfg.N)
	fmt.Printf("  sensors shut down by silent filters at t0: %d (%.1f%% battery saved)\n",
		silent, 100*float64(silent)/float64(cfg.N))

	it := w.Events()
	events := 0
	for {
		ev, ok := it.Next()
		if !ok {
			break
		}
		cluster.Deliver(ev.Stream, ev.Value)
		events++
	}
	fmt.Printf("  %d sensor updates → %d maintenance messages (%.1f%% suppressed)\n\n",
		events, cluster.Counter().Maintenance(),
		100*(1-float64(cluster.Counter().Maintenance())/float64(events)))

	// --- multiple consoles over the same sensors ---------------------------
	specs := []multiquery.QuerySpec{
		{Range: query.NewRange(0, 150), Tol: core.FractionTolerance{EpsPlus: 0.3, EpsMinus: 0.3}},    // frost watch
		{Range: query.NewRange(400, 600), Tol: core.FractionTolerance{EpsPlus: 0.2, EpsMinus: 0.2}},  // comfort band
		{Range: query.NewRange(850, 1000), Tol: core.FractionTolerance{EpsPlus: 0.4, EpsMinus: 0.4}}, // fire watch
	}
	mgr, err := multiquery.NewManager(initial, specs, 7)
	if err != nil {
		panic(err)
	}
	mgr.Initialize()
	it = w.Events()
	for {
		ev, ok := it.Next()
		if !ok {
			break
		}
		mgr.Deliver(ev.Stream, ev.Value)
	}
	fmt.Printf("three consoles sharing composite filters (multi-query extension):\n")
	fmt.Printf("  shared maintenance messages: %d for %d events\n",
		mgr.Counter().Maintenance(), events)
	for qi, spec := range specs {
		fmt.Printf("  console %d %v → %d sensors in answer\n",
			qi, spec.Range, len(mgr.Answer(qi)))
	}
	fmt.Printf("  fully shut-down sensors: %d\n", mgr.SilentStreams())
}
