// Elastic: the live tenant lifecycle on a serving node — admit tenants
// while traffic flows, evict one, snapshot the node mid-run, and restore
// the snapshot on a node with a different shard count without losing a
// single answer or message of accounting.
//
// The walkthrough proves the two properties DESIGN.md §6 argues:
//
//  1. Placement independence: the restored node runs 8 shards where the
//     original ran 2, yet both serve the same continuation bit-identically.
//  2. Barrier consistency: the snapshot reflects exactly the events drained
//     before it — counters included — so "resume from snapshot" equals
//     "never stopped".
//
// Run with: go run ./examples/elastic
package main

import (
	"bytes"
	"context"
	"fmt"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/runtime"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/sim"
)

// rangeTenant watches [lo, hi] with 20% fraction tolerance.
func rangeTenant(name string, initial []float64, lo, hi float64) runtime.TenantSpec {
	return runtime.TenantSpec{
		Name:    name,
		Initial: initial,
		NewProtocol: func(h server.Host, seed int64) server.Protocol {
			return core.NewFTNRP(h, query.NewRange(lo, hi), core.FTNRPConfig{
				Tol:       core.FractionTolerance{EpsPlus: 0.2, EpsMinus: 0.2},
				Selection: core.SelectRandom,
				Seed:      seed,
			})
		},
	}
}

// knnTenant tracks the k readings nearest q with rank slack r.
func knnTenant(name string, initial []float64, q float64, k, r int) runtime.TenantSpec {
	return runtime.TenantSpec{
		Name:    name,
		Initial: initial,
		NewProtocol: func(h server.Host, seed int64) server.Protocol {
			return core.NewRTP(h, query.At(q), core.RankTolerance{K: k, R: r})
		},
	}
}

// population seeds one tenant's private stream partition.
func population(rng *sim.RNG, n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Uniform(0, 1000)
	}
	return vals
}

// drive ingests `rounds` batches of random-walk traffic for the live slots.
func drive(node *runtime.Node, rng *sim.RNG, walks [][]float64, rounds int) error {
	for r := 0; r < rounds; r++ {
		batch := make([]runtime.Event, 0, 64)
		for len(batch) < 64 {
			ti := rng.Intn(len(walks))
			if !node.Alive(ti) {
				continue
			}
			s := rng.Intn(len(walks[ti]))
			walks[ti][s] += rng.Normal(0, 30)
			batch = append(batch, runtime.Event{Tenant: ti, Stream: s, Value: walks[ti][s]})
		}
		if err := node.Ingest(batch); err != nil {
			return err
		}
	}
	return node.Drain()
}

func report(node *runtime.Node, headline string) {
	fmt.Println(headline)
	for ti := 0; ti < node.NumTenants(); ti++ {
		if !node.Alive(ti) {
			fmt.Printf("  slot %d: (evicted)\n", ti)
			continue
		}
		fmt.Printf("  slot %d %-12s events=%-5d maintenance=%-5d |answer|=%d\n",
			ti, node.TenantName(ti), node.Events(ti), node.Counter(ti).Maintenance(),
			len(node.Answer(ti)))
	}
	fmt.Println()
}

func main() {
	rng := sim.NewRNG(7)
	pops := [][]float64{population(rng, 80), population(rng, 60)}
	specs := []runtime.TenantSpec{
		rangeTenant("warehouse", pops[0], 400, 600),
		knnTenant("fleet-knn", pops[1], 500, 5, 2),
	}

	// walks mirrors each slot's ground truth so traffic continues from the
	// true values; it grows as tenants are admitted.
	walks := [][]float64{
		append([]float64(nil), pops[0]...),
		append([]float64(nil), pops[1]...),
	}

	node, err := runtime.NewNode(runtime.Config{Shards: 2, Seed: 99}, specs)
	if err != nil {
		panic(err)
	}
	if err := node.Start(context.Background()); err != nil {
		panic(err)
	}
	defer node.Stop()
	traffic := sim.NewRNG(13)
	if err := drive(node, traffic, walks, 20); err != nil {
		panic(err)
	}
	report(node, "two tenants, 2 shards, 20 batches in:")

	// --- live admission: no restart, no pause for the existing tenants ---
	pop2 := population(rng, 70)
	specs = append(specs, rangeTenant("coldchain", pop2, 100, 300))
	walks = append(walks, append([]float64(nil), pop2...))
	ti, err := node.AddTenant(specs[2])
	if err != nil {
		panic(err)
	}
	if err := drive(node, traffic, walks, 20); err != nil {
		panic(err)
	}
	report(node, fmt.Sprintf("admitted %q live into slot %d:", node.TenantName(ti), ti))

	// --- snapshot the node at a barrier ---------------------------------
	snap, err := node.Snapshot()
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshot: %d bytes, version %d — taken while serving\n\n",
		len(snap), runtime.SnapshotVersion)

	// --- eviction: the evicted slot rejects traffic, others continue ----
	if err := node.RemoveTenant(0); err != nil {
		panic(err)
	}
	if err := drive(node, traffic, walks, 20); err != nil {
		panic(err)
	}
	report(node, `evicted slot 0 ("warehouse"):`)

	// --- restore the snapshot elsewhere, at a different shard count -----
	// The restored node resumes with all three tenants exactly as they
	// were at the barrier. Feed it the identical post-snapshot schedule
	// (minus nothing — slot 0 still exists there) and it lands exactly
	// where the original would have without the eviction.
	restored, err := runtime.RestoreNode(runtime.Config{Shards: 8}, specs, snap)
	if err != nil {
		panic(err)
	}
	if err := restored.Start(context.Background()); err != nil {
		panic(err)
	}
	defer restored.Stop()
	report(restored, "restored from snapshot on 8 shards:")

	// Determinism proof: restore the same snapshot once more at yet another
	// shard count, drive both with the same traffic, and compare snapshots.
	twin, err := runtime.RestoreNode(runtime.Config{Shards: 1}, specs, snap)
	if err != nil {
		panic(err)
	}
	if err := twin.Start(context.Background()); err != nil {
		panic(err)
	}
	defer twin.Stop()

	walksA := deepCopy(walks)
	walksB := deepCopy(walks)
	if err := drive(restored, sim.NewRNG(29), walksA, 30); err != nil {
		panic(err)
	}
	if err := drive(twin, sim.NewRNG(29), walksB, 30); err != nil {
		panic(err)
	}
	snapA, err := restored.Snapshot()
	if err != nil {
		panic(err)
	}
	snapB, err := twin.Snapshot()
	if err != nil {
		panic(err)
	}
	fmt.Printf("same traffic on 8 shards vs 1 shard after restore:\n")
	fmt.Printf("  snapshots byte-identical: %v (%d bytes)\n", bytes.Equal(snapA, snapB), len(snapA))
}

func deepCopy(walks [][]float64) [][]float64 {
	out := make([][]float64, len(walks))
	for i, w := range walks {
		out[i] = append([]float64(nil), w...)
	}
	return out
}
