// Netmonitor reproduces the paper's §6.1 motivating scenario: a central
// console watches 800 subnets and continuously reports the k subnets with
// the highest "bytes sent" of their latest connection — a top-k query with
// rank-based tolerance (the user accepts any subnet truly ranking k+r or
// better).
//
// Run with: go run ./examples/netmonitor [-k 20] [-r 5] [-conns 40000]
package main

import (
	"flag"
	"fmt"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/experiment"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/workload"
)

func main() {
	var (
		k     = flag.Int("k", 20, "rank requirement: report the top-k subnets")
		r     = flag.Int("r", 5, "rank slack: any subnet ranking k+r or above is acceptable")
		conns = flag.Int("conns", 40000, "connections to simulate")
		seed  = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	w, err := workload.NewTCPLike(workload.DefaultTCPLike(*conns, *seed))
	if err != nil {
		panic(err)
	}
	tol := core.RankTolerance{K: *k, R: *r}

	fmt.Printf("monitoring top-%d subnets by connection bytes across %d subnets (%d connections)\n",
		*k, w.N(), *conns)
	fmt.Printf("rank tolerance: answers may rank up to %d\n\n", tol.Eps())

	baseline := experiment.Run(experiment.Config{
		Workload: w,
		NewProtocol: func(c server.Host, _ int64) server.Protocol {
			return core.NewNoFilterKNN(c, query.TopK(*k))
		},
	})
	fmt.Printf("no filter:      %7d maintenance messages (every connection reported)\n",
		baseline.MaintMessages)

	var rtp *core.RTP
	res := experiment.Run(experiment.Config{
		Workload: w,
		Check:    experiment.CheckRank(query.Top(), tol, 25),
		NewProtocol: func(c server.Host, _ int64) server.Protocol {
			rtp = core.NewRTP(c, query.Top(), tol)
			return rtp
		},
	})
	fmt.Printf("RTP (r=%d):      %7d maintenance messages, %d bound deployments, %d full re-inits\n",
		*r, res.MaintMessages, rtp.Deploys, rtp.Reinits)
	fmt.Printf("oracle checks:  %d sampled, %d violations\n\n", res.Checks, res.Violations)

	if res.MaintMessages < baseline.MaintMessages {
		fmt.Printf("RTP saves %.1fx communication at rank slack %d\n",
			float64(baseline.MaintMessages)/float64(res.MaintMessages), *r)
	} else {
		fmt.Printf("RTP costs %.1fx MORE than no-filter here — the paper observes exactly "+
			"this at r=0 (bound recomputed on every crossing); try a larger -r\n",
			float64(res.MaintMessages)/float64(baseline.MaintMessages))
	}

	fmt.Printf("\ncurrent top-%d subnets (ids): %v\n", *k, res.FinalAnswer)
}
