// Quickstart: monitor a range query over a handful of streams with the
// fraction-based tolerance protocol (FT-NRP) and watch how few messages the
// server needs compared to hearing every update.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/experiment"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/workload"
)

func main() {
	// A small synthetic population: 500 streams random-walking in [0,1000],
	// one update every 20 time units on average (the paper's §6.2 model).
	cfg := workload.SyntheticConfig{
		N: 500, Lo: 0, Hi: 1000, MeanGap: 20, Sigma: 20,
		Horizon: 2000, Seed: 42,
	}
	w, err := workload.NewSynthetic(cfg)
	if err != nil {
		panic(err)
	}

	// The standing query: which streams currently read between 400 and 600?
	rng := query.NewRange(400, 600)

	// The user accepts up to 20% false positives and 20% false negatives.
	tol := core.FractionTolerance{EpsPlus: 0.2, EpsMinus: 0.2}

	run := func(name string, build func(c server.Host, seed int64) server.Protocol) experiment.Result {
		res := experiment.Run(experiment.Config{
			Workload:    w,
			NewProtocol: build,
			Seed:        1,
			// Validate every answer against ground truth while running.
			Check: experiment.CheckFractionRange(rng, tol, 1),
		})
		fmt.Printf("%-22s %8d events %8d maintenance messages  (violations: %d)\n",
			name, res.Events, res.MaintMessages, res.Violations)
		return res
	}

	fmt.Printf("standing query %v with tolerance %v over %d streams\n\n", rng, tol, cfg.N)
	noFilter := run("no filter", func(c server.Host, seed int64) server.Protocol {
		return core.NewNoFilterRange(c, rng)
	})
	zt := run("ZT-NRP (zero tol.)", func(c server.Host, seed int64) server.Protocol {
		return core.NewZTNRP(c, rng)
	})
	ft := run("FT-NRP (ε=0.2)", func(c server.Host, seed int64) server.Protocol {
		return core.NewFTNRP(c, rng, core.FTNRPConfig{
			Tol: tol, Selection: core.SelectBoundaryNearest, Seed: seed,
		})
	})

	fmt.Printf("\nfilters cut traffic %.1fx; tolerance adds another %.1fx on top\n",
		float64(noFilter.MaintMessages)/float64(zt.MaintMessages),
		float64(zt.MaintMessages)/float64(ft.MaintMessages))
	fmt.Printf("final answer has %d streams (exact would list every stream in [400,600])\n",
		len(ft.FinalAnswer))
}
