// Queryplane: the multi-query composite-filter plane on a serving node —
// many standing queries over one stream population, sharing one value
// table, one message counter and per-stream composite filters, with
// queries admitted and removed while traffic flows and the whole fabric
// snapshot/restored across a shard-count change.
//
// The walkthrough proves the three properties DESIGN.md §7 argues:
//
//  1. Sharing economics: M queries on one composite tenant initialize for
//     2n+n messages total (not M times that), and a value change crossing
//     several query boundaries costs one update message — strictly fewer
//     maintenance messages than M independent single-query tenants.
//  2. Live query lifecycle: AddQuery/RemoveQuery ride the same drain
//     barriers as the tenant lifecycle; a new query pays its own t0 and
//     siblings are unperturbed.
//  3. Durability: a snapshot cut through the composite fabric restores on
//     a different shard count and continues bit-identically.
//
// Run with: go run ./examples/queryplane
package main

import (
	"bytes"
	"context"
	"fmt"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/runtime"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/sim"
)

// rangeQuery watches [lo, hi] with 20% fraction tolerance.
func rangeQuery(name string, lo, hi float64) runtime.QuerySpec {
	return runtime.QuerySpec{
		Name: name,
		NewProtocol: func(h server.Host, seed int64) server.Protocol {
			return core.NewFTNRP(h, query.NewRange(lo, hi), core.FTNRPConfig{
				Tol:       core.FractionTolerance{EpsPlus: 0.2, EpsMinus: 0.2},
				Selection: core.SelectRandom,
				Seed:      seed,
			})
		},
	}
}

// rankQuery tracks the k readings nearest q with rank slack r.
func rankQuery(name string, q float64, k, r int) runtime.QuerySpec {
	return runtime.QuerySpec{
		Name: name,
		NewProtocol: func(h server.Host, seed int64) server.Protocol {
			return core.NewRTP(h, query.At(q), core.RankTolerance{K: k, R: r})
		},
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	const n = 120
	rng := sim.NewRNG(7)
	initial := make([]float64, n)
	for i := range initial {
		initial[i] = rng.Uniform(0, 1000)
	}
	// Three dashboards watch the same sensor population: two overlapping
	// alert bands and a nearest-to-setpoint ranking.
	queries := []runtime.QuerySpec{
		rangeQuery("alert-low", 150, 450),
		rangeQuery("alert-high", 350, 750),
		rankQuery("nearest-500", 500, 8, 3),
	}
	spec := runtime.TenantSpec{Name: "plant", Initial: initial, Queries: queries}

	// --- 1. sharing economics --------------------------------------------
	node, err := runtime.NewNode(runtime.Config{Shards: 2, Seed: 42}, []runtime.TenantSpec{spec})
	check(err)
	check(node.Start(context.Background()))
	check(node.Drain()) // wait out t0 on the shard loops
	init := node.Counter(0).PhaseTotal(0)
	fmt.Printf("t0 for %d queries over %d streams: %d messages (2n+n = %d — independent clusters would pay %d)\n",
		len(queries), n, init, 3*n, len(queries)*3*n)

	walk := append([]float64(nil), initial...)
	moves := make([]runtime.Event, 4000)
	for i := range moves {
		s := rng.Intn(n)
		walk[s] += rng.Normal(0, 40)
		moves[i] = runtime.Event{Tenant: 0, Stream: s, Value: walk[s]}
	}
	check(node.Ingest(moves[:2000]))
	check(node.Drain())
	fmt.Printf("after 2000 events: maintenance=%d messages shared across %d queries\n",
		node.Counter(0).Maintenance(), len(queries))
	for qi := 0; qi < node.NumQueries(0); qi++ {
		fmt.Printf("  %-12s answer size %d\n", node.QueryName(0, qi), len(node.QueryAnswer(0, qi)))
	}

	// --- 2. live query lifecycle -----------------------------------------
	before := node.Counter(0).Maintenance()
	qi, err := node.AddQuery(0, rangeQuery("alert-wide", 100, 900))
	check(err)
	fmt.Printf("admitted %q as slot %d (its t0 charged to init, not maintenance: maintenance still %d)\n",
		node.QueryName(0, qi), qi, node.Counter(0).Maintenance())
	if node.Counter(0).Maintenance() != before {
		panic("admission leaked into the maintenance metric")
	}
	check(node.RemoveQuery(0, 1)) // the high band is decommissioned
	fmt.Printf("removed slot 1; live queries now: ")
	for q := 0; q < node.NumQueries(0); q++ {
		if node.QueryAlive(0, q) {
			fmt.Printf("%s ", node.QueryName(0, q))
		}
	}
	fmt.Println()

	// --- 3. snapshot cut, restore on another shard count ------------------
	snap, err := node.Snapshot()
	check(err)
	fmt.Printf("snapshot: %d bytes (whole fabric: values, table, %d filter entries/stream, per-query state)\n",
		len(snap), node.NumQueries(0))

	check(node.Ingest(moves[2000:]))
	check(node.Drain())
	finalSnap, err := node.Snapshot()
	check(err)
	node.Stop()

	// The restore spec lists every query slot ever admitted, in order.
	rspec := spec
	rspec.Queries = append(append([]runtime.QuerySpec(nil), queries...), rangeQuery("alert-wide", 100, 900))
	restored, err := runtime.RestoreNode(runtime.Config{Shards: 8}, []runtime.TenantSpec{rspec}, snap)
	check(err)
	check(restored.Start(context.Background()))
	check(restored.Ingest(moves[2000:]))
	check(restored.Drain())
	restoredSnap, err := restored.Snapshot()
	check(err)
	restored.Stop()

	if !bytes.Equal(finalSnap, restoredSnap) {
		panic("restored continuation diverged from the uninterrupted run")
	}
	fmt.Println("restored on 8 shards, replayed the tail: final snapshots byte-identical — the cut is invisible")
}
