package main

import (
	"path/filepath"
	"strings"
	"testing"

	"adaptivefilters/internal/bench"
)

// writeSuite stores a suite under dir and returns its path.
func writeSuite(t *testing.T, dir, name string, s *bench.Suite) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func gateSuite(eventsPerSec, allocs, p99 float64) *bench.Suite {
	return &bench.Suite{
		Benchmark:  "suite",
		GoMaxProcs: 8,
		Results: []bench.Result{
			{Name: "multi-tenant-ingest/shards=8", EventsPerOp: 1 << 16,
				NsPerOp: 1e6, EventsPerSec: eventsPerSec, AllocsPerOp: allocs, IngestPath: true},
			{Name: "wire-loopback-ingest/batch=256", EventsPerOp: 1 << 14,
				NsPerOp: 2e6, EventsPerSec: eventsPerSec / 2, P50Ns: p99 / 4, P99Ns: p99, P999Ns: p99 * 3},
		},
	}
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeSuite(t, dir, "base.json", gateSuite(1e7, 0, 50_000))

	cases := []struct {
		name string
		args []string
		want int
		out  string // substring of stdout (pass) or stderr (fail)
	}{
		{"pass", []string{"-baseline", base,
			"-current", writeSuite(t, dir, "same.json", gateSuite(1e7, 0, 50_000))},
			0, "within 15%"},
		{"throughput-trip", []string{"-baseline", base,
			"-current", writeSuite(t, dir, "slow.json", gateSuite(5e6, 0, 50_000))},
			1, "throughput regressed"},
		{"latency-trip", []string{"-baseline", base,
			"-current", writeSuite(t, dir, "lag.json", gateSuite(1e7, 0, 200_000))},
			1, "latency regressed"},
		{"alloc-trip", []string{"-baseline", base,
			"-current", writeSuite(t, dir, "leak.json", gateSuite(1e7, 2, 50_000))},
			1, "allocs/op grew"},
		{"missing-file", []string{"-baseline", base,
			"-current", filepath.Join(dir, "nope.json")},
			2, "benchgate:"},
		{"bad-flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("exit = %d, want %d (stderr: %s)", got, tc.want, stderr.String())
			}
			combined := stdout.String() + stderr.String()
			if !strings.Contains(combined, tc.out) {
				t.Fatalf("output missing %q:\n%s", tc.out, combined)
			}
		})
	}
}

// TestDeltaTable checks a passing gate prints the per-benchmark summary
// with signed movements and rendered latency.
func TestDeltaTable(t *testing.T) {
	dir := t.TempDir()
	base := writeSuite(t, dir, "base.json", gateSuite(1e7, 0, 50_000))
	cur := writeSuite(t, dir, "cur.json", gateSuite(1.05e7, 0, 55_000))
	var stdout, stderr strings.Builder
	if got := run([]string{"-baseline", base, "-current", cur}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit = %d (stderr: %s)", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"benchmark", "events/sec", "allocs/op", "p99",
		"multi-tenant-ingest/shards=8", "wire-loopback-ingest/batch=256",
		"+5.0%", // throughput moved up 5%
		"55µs",  // p99 rendered as a duration
		"—",     // the ingest row records no latency
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("delta table missing %q:\n%s", want, out)
		}
	}
}
