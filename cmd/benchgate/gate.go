package main

import (
	"flag"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"adaptivefilters/internal/bench"
)

// run is the whole gate, extracted from main so exit paths are unit
// testable: 0 = gate passes, 1 = violations, 2 = usage or unreadable
// input.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath  = fs.String("baseline", "BENCH_baseline.json", "committed baseline suite")
		currentPath   = fs.String("current", "BENCH_suite.json", "freshly measured suite")
		maxRegress    = fs.Float64("max-regress", 0.15, "tolerated fractional events/sec drop")
		maxLatRegress = fs.Float64("max-lat-regress", 0.5,
			"tolerated fractional growth of recorded p50/p99/p999 latency")
		flatFactor = fs.Float64("flat-factor", 10,
			"per-event cost bound on the wide-M multi-query points, as a factor of m=1")
		minScale = fs.Float64("min-scale", 1.8,
			"required events/sec speedup of ingesters=4/shards=8 over ingesters=1/shards=1 (enforced only at GOMAXPROCS >= 4)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	baseline, err := bench.LoadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	current, err := bench.LoadFile(*currentPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}

	if baseline.GoMaxProcs != current.GoMaxProcs {
		fmt.Fprintf(stderr,
			"benchgate: baseline GOMAXPROCS=%d vs current %d — hardware mismatch, "+
				"throughput and latency rules are advisory until the baseline is refreshed "+
				"from this environment's artifact (allocs/op rules still enforced)\n",
			baseline.GoMaxProcs, current.GoMaxProcs)
	}
	const mqRef = "multi-query-sharing/composite/m=1"
	violations := bench.Compare(baseline, current, bench.GateConfig{
		MaxThroughputRegress: *maxRegress,
		MaxLatencyRegress:    *maxLatRegress,
		FlatRules: []bench.FlatRule{
			{Ref: mqRef, Scaled: "multi-query-sharing/composite/m=64", MaxFactor: *flatFactor},
			{Ref: mqRef, Scaled: "multi-query-sharing/composite/m=256", MaxFactor: *flatFactor},
		},
		ScaleRules: []bench.ScaleRule{
			{
				Ref:       "multi-tenant-ingest/ingesters=1/shards=1",
				Scaled:    "multi-tenant-ingest/ingesters=4/shards=8",
				MinFactor: *minScale,
				MinProcs:  4,
			},
		},
	})
	if len(violations) > 0 {
		fmt.Fprintf(stderr, "benchgate: %d violation(s) against %s:\n", len(violations), *baselinePath)
		for _, v := range violations {
			fmt.Fprintln(stderr, "  -", v)
		}
		return 1
	}
	fmt.Fprintf(stdout,
		"benchgate: %d benchmark(s) within %.0f%% of %s, ingest path allocation-clean, wide-M near-flat\n",
		len(baseline.Results), *maxRegress*100, *baselinePath)
	writeDeltaTable(stdout, baseline, current)
	return 0
}

// writeDeltaTable prints the per-benchmark baseline-vs-current summary a
// passing gate leaves in the CI log: throughput delta, per-op cost delta,
// allocation and latency movement at a glance.
func writeDeltaTable(w io.Writer, baseline, current *bench.Suite) {
	byName := make(map[string]bench.Result, len(current.Results))
	for _, r := range current.Results {
		byName[r.Name] = r
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\tevents/sec\tΔ\tns/op\tΔ\tallocs/op\tp99\t")
	for _, base := range baseline.Results {
		cur, ok := byName[base.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.0f\t%s\t%.2f\t%s\t\n",
			base.Name,
			throughputCell(cur.EventsPerSec),
			deltaCell(base.EventsPerSec, cur.EventsPerSec),
			cur.NsPerOp,
			deltaCell(base.NsPerOp, cur.NsPerOp),
			cur.AllocsPerOp,
			latencyCell(cur.P99Ns))
	}
	tw.Flush()
}

func throughputCell(v float64) string {
	if v <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.0f", v)
}

// deltaCell renders the relative movement from base to cur, signed.
func deltaCell(base, cur float64) string {
	if base <= 0 || cur <= 0 {
		return "—"
	}
	return fmt.Sprintf("%+.1f%%", 100*(cur/base-1))
}

func latencyCell(ns float64) string {
	if ns <= 0 {
		return "—"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}
