// Command benchgate is the CI benchmark regression gate: it compares a
// fresh BENCH_*.json suite against the committed baseline and exits
// non-zero when throughput regressed beyond the tolerance, when any
// ingest-path benchmark's allocs/op grew (the zero-allocation invariant),
// when a deterministic maintenance-message count grew, or when the
// multi-query scaling points stopped being near-flat.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_suite.json [-max-regress 0.15] [-flat-factor 10]
//
// The near-flat rule is intra-run and machine-independent: within the
// current suite, the per-event cost of the M=64 and M=256 composite points
// must stay within -flat-factor of the M=1 point. A regression back to
// scanning every standing query per event scales per-event cost with M and
// cannot pass, no matter how fast the machine is.
//
// To refresh the baseline after an intentional performance change, run the
// suite locally (or download the BENCH_suite artifact from a green main
// build) and commit it as BENCH_baseline.json — see DESIGN.md, "Hot path &
// benchmarking".
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptivefilters/internal/bench"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline suite")
		currentPath  = flag.String("current", "BENCH_suite.json", "freshly measured suite")
		maxRegress   = flag.Float64("max-regress", 0.15, "tolerated fractional events/sec drop")
		flatFactor   = flag.Float64("flat-factor", 10,
			"per-event cost bound on the wide-M multi-query points, as a factor of m=1")
	)
	flag.Parse()

	baseline, err := bench.LoadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := bench.LoadFile(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	if baseline.GoMaxProcs != current.GoMaxProcs {
		fmt.Fprintf(os.Stderr,
			"benchgate: baseline GOMAXPROCS=%d vs current %d — hardware mismatch, "+
				"throughput rule is advisory until the baseline is refreshed from this "+
				"environment's artifact (allocs/op rules still enforced)\n",
			baseline.GoMaxProcs, current.GoMaxProcs)
	}
	const mqRef = "multi-query-sharing/composite/m=1"
	violations := bench.Compare(baseline, current, bench.GateConfig{
		MaxThroughputRegress: *maxRegress,
		FlatRules: []bench.FlatRule{
			{Ref: mqRef, Scaled: "multi-query-sharing/composite/m=64", MaxFactor: *flatFactor},
			{Ref: mqRef, Scaled: "multi-query-sharing/composite/m=256", MaxFactor: *flatFactor},
		},
	})
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d violation(s) against %s:\n", len(violations), *baselinePath)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within %.0f%% of %s, ingest path allocation-clean, wide-M near-flat\n",
		len(baseline.Results), *maxRegress*100, *baselinePath)
}
