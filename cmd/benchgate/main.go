// Command benchgate is the CI benchmark regression gate: it compares a
// fresh BENCH_*.json suite against the committed baseline and exits
// non-zero when throughput regressed beyond the tolerance, when a recorded
// serving-latency percentile (p50/p99/p999) grew past its allowance, when
// any ingest-path benchmark's allocs/op grew (the zero-allocation
// invariant), when a deterministic maintenance-message count grew, or when
// the multi-query scaling points stopped being near-flat.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_suite.json \
//	    [-max-regress 0.15] [-max-lat-regress 0.5] [-flat-factor 10]
//
// The near-flat rule is intra-run and machine-independent: within the
// current suite, the per-event cost of the M=64 and M=256 composite points
// must stay within -flat-factor of the M=1 point. A regression back to
// scanning every standing query per event scales per-event cost with M and
// cannot pass, no matter how fast the machine is.
//
// On a passing gate it prints a per-benchmark delta table (throughput,
// per-op cost, allocations, p99 latency against the baseline) so CI logs
// show the movement a green build ships with.
//
// To refresh the baseline after an intentional performance change, run the
// suite locally (or download the BENCH_suite artifact from a green main
// build) and commit it as BENCH_baseline.json — see DESIGN.md, "Hot path &
// benchmarking".
package main

import "os"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
