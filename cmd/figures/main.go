// Command figures regenerates the paper's evaluation figures (9–15) as text
// tables or CSV.
//
// Usage:
//
//	figures [-figure N] [-scale S] [-seed K] [-check] [-csv] [-parallel] [-workers W]
//
// Without -figure it runs the full evaluation suite. -scale multiplies the
// workload sizes (1.0 = the defaults documented in DESIGN.md; ≈15 matches
// the paper's full TCP trace volume). -check enables oracle validation of
// every answer while the simulation runs.
//
// -parallel fans each figure's independent cells out over a
// runtime.GOMAXPROCS worker pool; -workers W picks an explicit pool size.
// Every cell derives its own seed from -seed and its grid coordinates, so
// the tables are byte-identical to a sequential run. Ctrl-C cancels the
// regeneration between cells.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adaptivefilters/internal/experiment"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "paper figure number to run (9..15); 0 = all")
		scale    = flag.Float64("scale", 1.0, "workload size multiplier")
		seed     = flag.Int64("seed", 1, "determinism seed")
		check    = flag.Bool("check", false, "validate answers against the ground-truth oracle")
		every    = flag.Int("check-every", 25, "oracle check sampling period (with -check)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = flag.Bool("parallel", false, "run each figure's cells on a GOMAXPROCS worker pool")
		workers  = flag.Int("workers", 0, "explicit worker-pool size (implies -parallel; 0 = sequential)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiment.Options{
		Scale: *scale, Seed: *seed, Check: *check, CheckEvery: *every,
		Workers: *workers, Ctx: ctx,
	}
	if *parallel && *workers == 0 {
		opts.Workers = -1 // resolve to runtime.GOMAXPROCS(0)
	}

	var figs []experiment.Figure
	if *figure == 0 {
		figs = experiment.Figures()
	} else {
		f, ok := experiment.FigureByID(*figure)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %d (have 9..15)\n", *figure)
			os.Exit(2)
		}
		figs = []experiment.Figure{f}
	}

	for i, f := range figs {
		start := time.Now()
		table := f.Run(opts)
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "figures: cancelled")
			os.Exit(1)
		}
		if *csv {
			if err := table.CSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		if err := table.Fprint(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Printf("  (%.1fs)\n", time.Since(start).Seconds())
	}
}
