// Command tracegen generates and inspects the workloads driving the
// experiments: it can dump events as CSV (time,stream,value) or print
// summary statistics (rates, value distribution, crossing counts for a
// range), which is how the TCP-like substitute documented in DESIGN.md §3
// was calibrated.
//
// Examples:
//
//	tracegen -workload tcp -events 10000 -stats
//	tracegen -workload synthetic -sigma 40 -events 5000 > trace.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"adaptivefilters/internal/query"
	"adaptivefilters/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "tcp", "workload: synthetic | tcp")
		n      = flag.Int("n", 800, "number of streams")
		events = flag.Int("events", 10000, "number of events")
		sigma  = flag.Float64("sigma", 20, "synthetic step deviation")
		seed   = flag.Int64("seed", 1, "determinism seed")
		stats  = flag.Bool("stats", false, "print summary statistics instead of CSV")
		lo     = flag.Float64("lo", 400, "range lower bound for crossing stats")
		hi     = flag.Float64("hi", 600, "range upper bound for crossing stats")
	)
	flag.Parse()

	var w workload.Workload
	var err error
	switch *wl {
	case "synthetic":
		cfg := workload.SyntheticConfig{
			N: *n, Lo: 0, Hi: 1000, MeanGap: 20, Sigma: *sigma,
			Horizon: float64(*events) * 20 / float64(*n), Seed: *seed,
		}
		w, err = workload.NewSynthetic(cfg)
	case "tcp":
		cfg := workload.DefaultTCPLike(*events, *seed)
		cfg.N = *n
		w, err = workload.NewTCPLike(cfg)
	default:
		err = fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}

	if !*stats {
		out := bufio.NewWriter(os.Stdout)
		defer out.Flush()
		fmt.Fprintln(out, "time,stream,value")
		it := w.Events()
		for {
			ev, ok := it.Next()
			if !ok {
				return
			}
			fmt.Fprintf(out, "%g,%d,%g\n", ev.Time, ev.Stream, ev.Value)
		}
	}

	printStats(w, query.NewRange(*lo, *hi))
}

func printStats(w workload.Workload, rng query.Range) {
	initial := w.Initial()
	last := append([]float64(nil), initial...)
	counts := make([]int, w.N())
	crossings := 0
	inRange := 0
	var values []float64
	it := w.Events()
	total := 0
	var lastTime float64
	for {
		ev, ok := it.Next()
		if !ok {
			break
		}
		total++
		counts[ev.Stream]++
		if rng.Contains(last[ev.Stream]) != rng.Contains(ev.Value) {
			crossings++
		}
		last[ev.Stream] = ev.Value
		values = append(values, ev.Value)
		lastTime = ev.Time
	}
	for _, v := range last {
		if rng.Contains(v) {
			inRange++
		}
	}

	fmt.Printf("workload: %s\n", w.Name())
	fmt.Printf("streams: %d, events: %d, span: %.0f time units\n", w.N(), total, lastTime)
	if total == 0 {
		return
	}
	sort.Float64s(values)
	q := func(p float64) float64 { return values[int(p*float64(len(values)-1))] }
	fmt.Printf("value quantiles: p1=%.0f p25=%.0f p50=%.0f p75=%.0f p99=%.0f max=%.0f\n",
		q(0.01), q(0.25), q(0.5), q(0.75), q(0.99), values[len(values)-1])
	fmt.Printf("range %v: %d streams inside at end (%.1f%%), %d boundary crossings (%.1f%% of events)\n",
		rng, inRange, 100*float64(inRange)/float64(w.N()),
		crossings, 100*float64(crossings)/float64(total))

	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top, tot := 0, 0
	for i, c := range counts {
		tot += c
		if i < len(counts)/10 {
			top += c
		}
	}
	fmt.Printf("activity skew: busiest 10%% of streams carry %.1f%% of events\n",
		100*float64(top)/float64(tot))
	gini := giniOfCounts(counts)
	fmt.Printf("activity gini: %.3f (0 = uniform, 1 = single stream)\n", gini)
}

func giniOfCounts(sortedDesc []int) float64 {
	n := len(sortedDesc)
	if n == 0 {
		return 0
	}
	asc := make([]float64, n)
	for i, c := range sortedDesc {
		asc[n-1-i] = float64(c)
	}
	var cum, weighted, totalF float64
	for i, v := range asc {
		cum += v
		weighted += float64(i+1) * v
		totalF += v
	}
	if totalF == 0 {
		return 0
	}
	return math.Abs((2*weighted)/(float64(n)*totalF) - float64(n+1)/float64(n))
}
