// Cluster mode: -cluster N hosts the configured tenants on N in-process
// runtime nodes behind internal/cluster's consistent-hash router instead of
// one node. The tenants are admitted through declarative specs (protospec),
// so every one of them is migratable; -migrate-every forces round-robin
// live migrations mid-stream. The -answers dump renders through the same
// runtime.Report.Text as every other mode and must be byte-identical to a
// single-node run — CI's cluster job diffs members 1 and 3 against the
// -tenants reference, with a migration cut in the middle.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"adaptivefilters/internal/cluster"
	"adaptivefilters/internal/comm"
	"adaptivefilters/internal/protospec"
	"adaptivefilters/internal/runtime"
	"adaptivefilters/internal/sim"
	"adaptivefilters/internal/wire"
	"adaptivefilters/internal/workload"
)

// buildWireSpecs is buildSpecs' declarative twin: the same tenant names,
// initial values and per-query shifts, expressed as wire.TenantSpecs the
// cluster can serialize for migration.
func buildWireSpecs(cfg tenantsConfig,
	mkWorkload func(int64) (workload.Workload, error),
	declQuery func(j int) protospec.Spec) ([]wire.TenantSpec, []workload.Iterator, error) {

	specs := make([]wire.TenantSpec, cfg.tenants)
	iters := make([]workload.Iterator, cfg.tenants)
	for i := 0; i < cfg.tenants; i++ {
		w, err := mkWorkload(sim.DeriveSeed(cfg.seed, tenantWorkloadStream, int64(i)))
		if err != nil {
			return nil, nil, err
		}
		specs[i] = wire.TenantSpec{
			Name:    fmt.Sprintf("%s/%s-%d", cfg.proto, w.Name(), i),
			Initial: w.Initial(),
		}
		if cfg.queries > 1 {
			qs := make([]wire.QuerySpec, cfg.queries)
			for j := 0; j < cfg.queries; j++ {
				qs[j] = wire.QuerySpec{Name: fmt.Sprintf("q%d", j), Spec: declQuery(j)}
			}
			specs[i].Queries = qs
		} else {
			specs[i].Spec = declQuery(0)
		}
		iters[i] = w.Events()
	}
	return specs, iters, nil
}

// runClusterSim plays the merged multi-tenant stream through a cluster of
// `members` in-process nodes. With migrateEvery > 0 a live tenant is
// migrated round-robin to the next member about every migrateEvery ingested
// events (at the following batch boundary) — the mid-stream cut the
// determinism invariant is tested against.
func runClusterSim(cfg tenantsConfig, members, migrateEvery int,
	mkWorkload func(int64) (workload.Workload, error),
	declQuery func(j int) protospec.Spec) error {

	specs, iters, err := buildWireSpecs(cfg, mkWorkload, declQuery)
	if err != nil {
		return err
	}
	merge := workload.MergeIterators(iters)

	mems := make([]cluster.Member, members)
	nodes := make([]*runtime.Node, members)
	for m := 0; m < members; m++ {
		node, err := runtime.NewNodeLabeled(runtime.Config{Shards: cfg.shards, Seed: cfg.seed}, nil, nil)
		if err != nil {
			return err
		}
		if err := node.Start(context.Background()); err != nil {
			return err
		}
		defer node.Stop()
		nodes[m] = node
		mems[m] = cluster.NewLocalMember(node)
	}
	c, err := cluster.New(cluster.Config{}, mems)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		if _, err := c.AddTenant(spec); err != nil {
			return err
		}
	}
	// Settle t0 initialization before the clock starts, as runTenants does.
	if err := c.Drain(); err != nil {
		return err
	}

	start := time.Now()
	var ingested, migrations uint64
	nextMig := uint64(0)
	if migrateEvery > 0 {
		nextMig = uint64(migrateEvery)
	}
	buf := make([]runtime.Event, 0, cfg.batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := c.Ingest(buf); err != nil {
			return err
		}
		ingested += uint64(len(buf))
		buf = buf[:0]
		for nextMig > 0 && ingested >= nextMig {
			// Round-robin cut: tenant (migrations % tenants) hops to the next
			// member. Deterministic, so reruns cut at the same points.
			g := int(migrations) % cfg.tenants
			m, err := c.MemberOf(g)
			if err != nil {
				return err
			}
			if err := c.MigrateTenant(g, (m+1)%members); err != nil {
				return err
			}
			migrations++
			nextMig += uint64(migrateEvery)
		}
		return nil
	}
	for {
		tev, ok := merge.Next()
		if !ok {
			break
		}
		buf = append(buf, runtime.Event{Tenant: tev.Source, Stream: tev.Event.Stream, Value: tev.Event.Value})
		if len(buf) == cfg.batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := c.Drain(); err != nil {
		return err
	}
	elapsed := time.Since(start)

	rep, err := c.Report()
	if err != nil {
		return err
	}
	fmt.Printf("cluster:    members=%d tenants=%d queries/tenant=%d shards=%d batch=%d\n",
		members, cfg.tenants, cfg.queries, nodes[0].Shards(), cfg.batch)
	if migrateEvery > 0 {
		fmt.Printf("migrations: %d forced (about every %d events)\n", migrations, migrateEvery)
	}
	fmt.Printf("ingested:   %d events in %v (%.0f events/sec)\n",
		ingested, elapsed.Round(time.Millisecond), float64(ingested)/elapsed.Seconds())
	stats, err := c.MemberStats()
	if err != nil {
		return err
	}
	owned := make([]int, members)
	for g := 0; g < c.NumTenants(); g++ {
		if m, err := c.MemberOf(g); err == nil {
			owned[m]++
		}
	}
	for m, s := range stats {
		// s.Tenants counts every member-local slot ever used (migration
		// leaves dead slots behind); owned is the live placement.
		fmt.Printf("  member %d: tenants=%d events=%d\n", m, owned[m], s.TotalEvents)
	}
	fmt.Printf("node totals: init=%d maintenance=%d serverOps=%d\n",
		rep.Totals.PhaseTotal(comm.Init), rep.Totals.Maintenance(), rep.Totals.ServerOps)
	if cfg.answers != "" {
		if err := os.WriteFile(cfg.answers, []byte(rep.Text()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
