package main

import (
	"strings"
	"testing"
)

// okParams is a valid baseline every table case mutates.
func okParams() simParams {
	return simParams{
		Tenants: 1, Queries: 1, Shards: 1,
		N: 1000, Events: 50000, Batch: 512, CheckEvery: 10,
		Ingesters: 1, Conns: 1,
		Proto: "ft-nrp", K: 20, R: 5, Width: 100,
		EpsPlus: 0.2, EpsMinus: 0.2,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := okParams().validate(); err != nil {
		t.Fatal(err)
	}
	// Wire endpoints with sane flags pass too.
	p := okParams()
	p.Tenants, p.Listen = 4, ":0"
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	p = okParams()
	p.Tenants, p.Connect, p.Rate, p.LatencyOut, p.Shutdown = 4, "localhost:7070", 1e5, "lat.json", true
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	// Cluster mode with forced migrations, and a listener with a ready file.
	p = okParams()
	p.Tenants, p.Cluster, p.MigrateEvery = 4, 3, 1000
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	p = okParams()
	p.Tenants, p.Listen, p.ReadyFile = 4, ":0", "addr.txt"
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	// Spatial protocols: single tenant, many tenants, and snapshot/restore
	// all pass without -queries (spatial runs always host a node).
	p = okParams()
	p.Proto, p.QX, p.QY = "rtp2d", 500, 500
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	p.Tenants, p.SnapEvery = 4, 1000
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	p = okParams()
	p.Proto, p.Restore = "ft-rp2d", "x.snap"
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	// Concurrent ingesters on a local multi-tenant run, and a multi-connection
	// wire driver.
	p = okParams()
	p.Tenants, p.Shards, p.Ingesters = 8, 4, 4
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
	p = okParams()
	p.Tenants, p.Connect, p.Conns = 4, "localhost:7070", 4
	if err := p.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*simParams)
		want string // substring of the error
	}{
		{"zero-tenants", func(p *simParams) { p.Tenants = 0 }, "-tenants"},
		{"zero-queries", func(p *simParams) { p.Queries = 0 }, "-queries"},
		{"zero-shards", func(p *simParams) { p.Shards = 0 }, "-shards"},
		{"negative-shards", func(p *simParams) { p.Shards = -2 }, "-shards"},
		{"zero-n", func(p *simParams) { p.N = 0 }, "-n must"},
		{"negative-events", func(p *simParams) { p.Events = -1 }, "-events"},
		{"zero-batch", func(p *simParams) { p.Batch = 0 }, "-batch"},
		{"zero-check-every", func(p *simParams) { p.CheckEvery = 0 }, "-check-every"},
		{"negative-snap-every", func(p *simParams) { p.SnapEvery = -1 }, "-snapshot-every"},
		{"snapshot-outside-tenants-mode", func(p *simParams) { p.SnapEvery = 100 }, "-tenants mode"},
		{"restore-outside-tenants-mode", func(p *simParams) { p.Restore = "x.snap" }, "-tenants mode"},
		{"listen-and-connect", func(p *simParams) { p.Listen, p.Connect = ":1", ":2" }, "mutually exclusive"},
		{"negative-rate", func(p *simParams) { p.Connect, p.Rate = ":1", -5 }, "-rate"},
		{"rate-without-connect", func(p *simParams) { p.Rate = 100 }, "need -connect"},
		{"latency-out-without-connect", func(p *simParams) { p.LatencyOut = "l.json" }, "need -connect"},
		{"shutdown-without-connect", func(p *simParams) { p.Shutdown = true }, "need -connect"},
		{"snapshot-over-wire", func(p *simParams) { p.Tenants, p.Listen, p.SnapEvery = 2, ":1", 100 }, "not over the wire"},
		{"negative-cluster", func(p *simParams) { p.Cluster = -1 }, "-cluster"},
		{"negative-migrate-every", func(p *simParams) { p.MigrateEvery = -1 }, "-migrate-every"},
		{"migrate-without-cluster", func(p *simParams) { p.MigrateEvery = 1000 }, "needs -cluster"},
		{"cluster-and-listen", func(p *simParams) { p.Cluster, p.Listen = 2, ":1" }, "mutually exclusive"},
		{"cluster-and-connect", func(p *simParams) { p.Cluster, p.Connect = 2, ":1" }, "mutually exclusive"},
		{"cluster-and-snapshot", func(p *simParams) { p.Tenants, p.Cluster, p.SnapEvery = 2, 2, 100 }, "-cluster runs"},
		{"ready-file-without-listen", func(p *simParams) { p.ReadyFile = "addr.txt" }, "-ready-file needs -listen"},
		{"zero-ingesters", func(p *simParams) { p.Ingesters = 0 }, "-ingesters must"},
		{"ingesters-over-wire", func(p *simParams) { p.Tenants, p.Listen, p.Ingesters = 2, ":1", 2 }, "use -conns"},
		{"ingesters-with-cluster", func(p *simParams) { p.Tenants, p.Cluster, p.Ingesters = 2, 2, 2 }, "drop -ingesters"},
		{"ingesters-outside-tenants-mode", func(p *simParams) { p.Ingesters = 2 }, "-tenants mode"},
		{"ingesters-with-snapshot", func(p *simParams) { p.Tenants, p.SnapEvery, p.Ingesters = 2, 100, 2 }, "need -ingesters 1"},
		{"ingesters-with-restore", func(p *simParams) { p.Tenants, p.Restore, p.Ingesters = 2, "x.snap", 2 }, "need -ingesters 1"},
		{"zero-conns", func(p *simParams) { p.Conns = 0 }, "-conns must"},
		{"conns-without-connect", func(p *simParams) { p.Conns = 2 }, "-conns needs -connect"},
		{"bad-tolerance", func(p *simParams) { p.EpsMinus = -0.5 }, "fraction tolerance"},
		{"rtp-bad-rank", func(p *simParams) { p.Proto, p.K, p.R = "rtp", 900, 200 }, "rtp needs"},
		{"zt-rp-bad-k", func(p *simParams) { p.Proto, p.K = "zt-rp", 0 }, "zt-rp needs"},
		{"ft-rp-bad-k", func(p *simParams) { p.Proto, p.K = "ft-rp", 1000 }, "ft-rp needs"},
		{"vb-knn-bad-k", func(p *simParams) { p.Proto, p.K = "vb-knn", 1001 }, "vb-knn needs"},
		{"vb-knn-bad-width", func(p *simParams) { p.Proto, p.Width = "vb-knn", -1 }, "-width"},
		{"spatial-multi-query", func(p *simParams) { p.Proto, p.Queries = "rtp2d", 3 }, "single standing query"},
		{"spatial-listen", func(p *simParams) { p.Proto, p.Listen = "rtp2d", ":1" }, "in-process only"},
		{"spatial-connect", func(p *simParams) { p.Proto, p.Connect = "ft-rp2d", ":1" }, "in-process only"},
		{"spatial-cluster", func(p *simParams) { p.Proto, p.Cluster = "rtp2d", 2 }, "in-process only"},
		{"rtp2d-bad-rank", func(p *simParams) { p.Proto, p.K, p.R = "rtp2d", 900, 200 }, "rtp2d needs"},
		{"ft-rp2d-bad-k", func(p *simParams) { p.Proto, p.K = "ft-rp2d", 1000 }, "ft-rp2d needs"},
		{"ft-rp2d-bad-tol", func(p *simParams) { p.Proto, p.EpsPlus = "ft-rp2d", -2 }, "ft-rp2d"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := okParams()
			tc.mut(&p)
			err := p.validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
