// Spatial mode: -protocol rtp2d | ft-rp2d hosts 2-D moving-object tenants
// on a runtime.Node. Each tenant is one spatial standing query (a k-NN
// with rank or fraction tolerance around -qx/-qy) over its own planar
// random-walk workload; ingest, snapshots, -answers dumps and the shard
// determinism guarantee all work exactly as in 1-D -tenants mode.
package main

import (
	"fmt"

	"adaptivefilters/internal/protospec"
	"adaptivefilters/internal/runtime"
	"adaptivefilters/internal/sim"
	"adaptivefilters/internal/workload"
)

// buildSpatialSpecs derives every spatial tenant's runtime spec and planar
// workload iterator — the spatial twin of buildSpecs. The protocol factory
// compiles from the declarative spec, so a spatial flag set round-trips
// through the same protospec layer the 1-D modes use.
func buildSpatialSpecs(cfg tenantsConfig, spec protospec.Spec,
	n, events int, sigma float64) ([]runtime.TenantSpec, []workload.Iterator, error) {

	build, err := spec.SpatialFactory()
	if err != nil {
		return nil, nil, err
	}
	specs := make([]runtime.TenantSpec, cfg.tenants)
	iters := make([]workload.Iterator, cfg.tenants)
	for i := 0; i < cfg.tenants; i++ {
		wcfg := workload.Spatial2DConfig{
			N: n, Lo: 0, Hi: 1000, MeanGap: 20, Sigma: sigma,
			Horizon: float64(events) * 20 / float64(n),
			Seed:    sim.DeriveSeed(cfg.seed, tenantWorkloadStream, int64(i)),
		}
		w, err := workload.NewSpatial2D(wcfg)
		if err != nil {
			return nil, nil, err
		}
		specs[i] = runtime.TenantSpec{
			Name:           fmt.Sprintf("%s/%s-%d", cfg.proto, w.Name(), i),
			SpatialInitial: w.InitialPoints(),
			NewSpatial:     build,
		}
		iters[i] = w.Events()
	}
	return specs, iters, nil
}

// runSpatialTenants validates and compiles the spatial spec, then hosts the
// tenants through the same node loop as -tenants mode.
func runSpatialTenants(cfg tenantsConfig, spec protospec.Spec, n, events int, sigma float64) error {
	if err := spec.Validate(n); err != nil {
		return err
	}
	specs, iters, err := buildSpatialSpecs(cfg, spec, n, events, sigma)
	if err != nil {
		return err
	}
	return runNodeSim(cfg, specs, iters)
}
