// Wire mode: the -listen and -connect halves of the serving plane. Both
// ends are configured with the same flags; the listener compiles them into
// a hosted runtime.Node behind internal/netserve, the connector compiles
// them into workload iterators and drives the listener through the client
// package as an open-loop load generator.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/signal"
	gort "runtime"
	"sync"
	"time"

	"adaptivefilters/client"
	"adaptivefilters/internal/bench"
	"adaptivefilters/internal/netserve"
	"adaptivefilters/internal/runtime"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/sim"
	"adaptivefilters/internal/wire"
	"adaptivefilters/internal/workload"
)

// buildSpecs derives every tenant's runtime spec and workload iterator from
// the configured flags. It is the single construction all three node-hosting
// modes share: -tenants hosts the specs locally, -listen hosts them behind
// TCP, -connect discards them and plays only the iterators (the remote
// -listen process, started with the same flags, owns the node).
func buildSpecs(cfg tenantsConfig,
	mkWorkload func(int64) (workload.Workload, error),
	build func(c server.Host, seed int64) server.Protocol,
	buildQuery func(j int) func(c server.Host, seed int64) server.Protocol) ([]runtime.TenantSpec, []workload.Iterator, error) {

	specs := make([]runtime.TenantSpec, cfg.tenants)
	iters := make([]workload.Iterator, cfg.tenants)
	for i := 0; i < cfg.tenants; i++ {
		w, err := mkWorkload(sim.DeriveSeed(cfg.seed, tenantWorkloadStream, int64(i)))
		if err != nil {
			return nil, nil, err
		}
		specs[i] = runtime.TenantSpec{
			Name:    fmt.Sprintf("%s/%s-%d", cfg.proto, w.Name(), i),
			Initial: w.Initial(),
		}
		if cfg.queries > 1 {
			qs := make([]runtime.QuerySpec, cfg.queries)
			for j := 0; j < cfg.queries; j++ {
				qs[j] = runtime.QuerySpec{
					Name:        fmt.Sprintf("q%d", j),
					NewProtocol: buildQuery(j),
				}
			}
			specs[i].Queries = qs
		} else {
			specs[i].NewProtocol = build
		}
		iters[i] = w.Events()
	}
	return specs, iters, nil
}

// runListen hosts the configured node behind a TCP front end and serves
// until a client's -shutdown request or SIGINT. The resolved address is
// printed first (so -listen :0 runs are scriptable); with -ready-file it is
// also written to a file once the listener is accepting, so scripts can
// poll for readiness instead of sleeping. With -answers the node's final
// local dump is written after serving stops — byte-comparable against both
// an in-process run and a report fetched over the wire.
func runListen(addr, readyFile string, cfg tenantsConfig,
	mkWorkload func(int64) (workload.Workload, error),
	build func(c server.Host, seed int64) server.Protocol,
	buildQuery func(j int) func(c server.Host, seed int64) server.Protocol) error {

	specs, _, err := buildSpecs(cfg, mkWorkload, build, buildQuery)
	if err != nil {
		return err
	}
	node, err := runtime.NewNode(runtime.Config{Shards: cfg.shards, Seed: cfg.seed}, specs)
	if err != nil {
		return err
	}
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()
	if err := node.Start(ctx); err != nil {
		return err
	}
	defer node.Stop()
	// Finish t0 initialization before taking traffic, as the local modes do.
	if err := node.Drain(); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := netserve.Serve(ln, node, netserve.Options{})
	defer context.AfterFunc(ctx, s.Close)()
	fmt.Printf("listening:  %s   tenants=%d queries/tenant=%d shards=%d\n",
		s.Addr(), cfg.tenants, cfg.queries, node.Shards())
	if readyFile != "" {
		// Written after Serve: the listener accepts from this point on, so a
		// reader that sees the file can connect without racing the server.
		// Write-then-rename keeps partial reads impossible.
		tmp := readyFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(s.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, readyFile); err != nil {
			return err
		}
	}
	s.Wait()
	// The driver goroutine has exited (Wait synchronizes with it), so the
	// node is ours to inspect again.
	fmt.Printf("served:     %d events applied\n", node.TotalEvents())
	if cfg.answers != "" {
		return writeAnswers(cfg.answers, node)
	}
	return nil
}

// wireDrive bundles the -connect-only flags.
type wireDrive struct {
	rate     float64 // target events/sec across all connections; 0 = unpaced
	latOut   string  // bench suite JSON path; "" = none
	shutdown bool    // ask the remote process to stop afterwards
	conns    int     // concurrent connections; tenant i drives over conn i mod conns
}

// sendRec records one in-flight batch: its intended deadline and event
// count, keyed by ingest sequence number until the ack lands.
type sendRec struct {
	due time.Time
	n   int
}

// ackRec parks an ack that arrived before the sender recorded the batch's
// deadline (Ingest returns the sequence number after the frame is out).
type ackRec struct {
	at     time.Time
	status byte
}

// wireConn is one -connect connection: a pipelined client plus the ack
// bookkeeping its reader goroutine and sender goroutine share.
type wireConn struct {
	cl *client.Client

	mu                   sync.Mutex
	inflight             map[uint64]sendRec
	early                map[uint64]ackRec
	samples              []float64
	okEv, shedEv, lostEv uint64

	// Sender-goroutine-only counters, read after the sender joins.
	batches, sentEv, droppedEv uint64
}

// dialWireConn dials one connection and wires its ack callback into the
// connection's own bookkeeping, so connections never contend on a lock.
func dialWireConn(addr string) (*wireConn, error) {
	wc := &wireConn{
		inflight: make(map[uint64]sendRec),
		early:    make(map[uint64]ackRec),
	}
	cl, err := client.Dial(addr, client.Options{
		Reconnect: true,
		OnIngestAck: func(seq uint64, status byte) {
			at := time.Now()
			wc.mu.Lock()
			if rec, ok := wc.inflight[seq]; ok {
				delete(wc.inflight, seq)
				wc.settle(rec, at, status)
			} else {
				wc.early[seq] = ackRec{at, status}
			}
			wc.mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	wc.cl = cl
	return wc, nil
}

// settle accounts one acked batch. Caller holds wc.mu.
func (wc *wireConn) settle(rec sendRec, at time.Time, status byte) {
	switch status {
	case wire.StatusOK:
		wc.okEv += uint64(rec.n)
		wc.samples = append(wc.samples, float64(at.Sub(rec.due)))
	case wire.StatusShed:
		wc.shedEv += uint64(rec.n)
	default:
		wc.lostEv += uint64(rec.n)
	}
}

// drive plays this connection's tenant subset as an open-loop sender: batch
// i is due at start + i·gap regardless of how long earlier sends took, and
// each ack's latency is measured against that intended deadline — a stalled
// server inflates the recorded percentiles instead of silently slowing the
// generator down (coordinated omission is measured, not hidden). With gap 0
// the deadline is the send instant and the pipeline runs as fast as the
// window allows. tenants[j] is the global tenant id of iters[j], so staged
// events carry node-side ids while the merge stays local to the subset.
func (wc *wireConn) drive(cfg tenantsConfig, tenants []int, iters []workload.Iterator,
	gap time.Duration, start time.Time) error {

	merge := workload.MergeIterators(iters)
	buf := make([]runtime.Event, 0, cfg.batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		due := time.Now()
		if gap > 0 {
			due = start.Add(time.Duration(wc.batches) * gap)
			if wait := time.Until(due); wait > 0 {
				time.Sleep(wait)
			}
		}
		wc.batches++
		n := len(buf)
		seq, err := wc.cl.Ingest(buf)
		buf = buf[:0]
		if err != nil {
			if errors.Is(err, client.ErrDisconnected) {
				// The link is redialing: drop the batch and keep pace rather
				// than stalling the schedule.
				wc.droppedEv += uint64(n)
				return nil
			}
			return err
		}
		wc.sentEv += uint64(n)
		wc.mu.Lock()
		if a, ok := wc.early[seq]; ok {
			delete(wc.early, seq)
			wc.settle(sendRec{due, n}, a.at, a.status)
		} else {
			wc.inflight[seq] = sendRec{due, n}
		}
		wc.mu.Unlock()
		return nil
	}
	for {
		tev, ok := merge.Next()
		if !ok {
			break
		}
		buf = append(buf, runtime.Event{Tenant: tenants[tev.Source], Stream: tev.Event.Stream, Value: tev.Event.Value})
		if len(buf) == cfg.batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// runConnect plays the configured workload against a remote -listen process
// over drv.conns pipelined connections. Tenant i's traffic flows through
// connection i mod conns, so each tenant's events arrive in order on one
// connection — the schedule under which the remote node's answers stay
// byte-identical to a local run — while connections ingest concurrently
// against the server's per-connection readers. The open-loop rate budget is
// global: each connection paces at rate/conns.
func runConnect(addr string, cfg tenantsConfig, drv wireDrive,
	mkWorkload func(int64) (workload.Workload, error),
	build func(c server.Host, seed int64) server.Protocol,
	buildQuery func(j int) func(c server.Host, seed int64) server.Protocol) error {

	_, iters, err := buildSpecs(cfg, mkWorkload, build, buildQuery)
	if err != nil {
		return err
	}
	nconn := drv.conns
	if nconn < 1 {
		nconn = 1
	}
	if nconn > cfg.tenants {
		nconn = cfg.tenants // an idle extra connection would only add noise
	}
	ids := make([][]int, nconn)
	subs := make([][]workload.Iterator, nconn)
	for i := 0; i < cfg.tenants; i++ {
		c := i % nconn
		ids[c] = append(ids[c], i)
		subs[c] = append(subs[c], iters[i])
	}
	var gap time.Duration
	if drv.rate > 0 {
		gap = time.Duration(float64(cfg.batch) * float64(nconn) / drv.rate * float64(time.Second))
	}

	conns := make([]*wireConn, nconn)
	for c := range conns {
		wc, err := dialWireConn(addr)
		if err != nil {
			for _, prev := range conns[:c] {
				prev.cl.Close()
			}
			return err
		}
		conns[c] = wc
	}
	defer func() {
		for _, wc := range conns {
			wc.cl.Close()
		}
	}()
	rateLabel := "unpaced"
	if drv.rate > 0 {
		rateLabel = fmt.Sprintf("%.0f events/sec", drv.rate)
	}
	fmt.Printf("connected:  %s   tenants=%d queries/tenant=%d batch=%d conns=%d rate=%s\n",
		addr, cfg.tenants, cfg.queries, cfg.batch, nconn, rateLabel)

	start := time.Now()
	sendErrs := make([]error, nconn)
	var wg sync.WaitGroup
	for c := range conns {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sendErrs[c] = conns[c].drive(cfg, ids[c], subs[c], gap, start)
		}(c)
	}
	wg.Wait()
	for _, err := range sendErrs {
		if err != nil {
			return err
		}
	}

	// Barrier: each connection's drain ack proves every earlier pipelined
	// batch on that connection was answered, so the report below is stable.
	for _, wc := range conns {
		if err := retryWire(wc.cl.Drain); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	var rep *runtime.Report
	if err := retryWire(func() error {
		var e error
		rep, e = conns[0].cl.Report()
		return e
	}); err != nil {
		return err
	}

	var samples []float64
	var okEvents, shedEvents, lostEvents uint64
	var batches, sentEv, droppedEv uint64
	var ackedB, shedB, lostB uint64
	for _, wc := range conns {
		wc.mu.Lock()
		samples = append(samples, wc.samples...)
		okEvents += wc.okEv
		shedEvents += wc.shedEv
		lostEvents += wc.lostEv
		wc.mu.Unlock()
		batches += wc.batches
		sentEv += wc.sentEv
		droppedEv += wc.droppedEv
		st := wc.cl.Stats()
		ackedB += st.Acked
		shedB += st.Shed
		lostB += st.Lost
	}
	p50, p99, p999 := bench.LatencyPercentiles(samples)

	fmt.Printf("sent:       %d events in %d batches (%d events dropped while disconnected)\n",
		sentEv, batches, droppedEv)
	fmt.Printf("acks:       ok=%d shed=%d lost=%d batches (events ok=%d shed=%d lost=%d)\n",
		ackedB, shedB, lostB, okEvents, shedEvents, lostEvents)
	fmt.Printf("throughput: %.0f events/sec applied in %v\n",
		float64(okEvents)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	if len(samples) > 0 {
		fmt.Printf("latency:    p50=%v p99=%v p999=%v over %d acks (vs intended deadlines)\n",
			time.Duration(p50).Round(time.Microsecond),
			time.Duration(p99).Round(time.Microsecond),
			time.Duration(p999).Round(time.Microsecond), len(samples))
	}
	if cfg.answers != "" {
		// The dump renders through runtime.Report.Text — the same renderer
		// writeAnswers uses in-process — so a wire-fetched dump must be
		// byte-identical to the local one; CI diffs them.
		if err := os.WriteFile(cfg.answers, []byte(rep.Text()), 0o644); err != nil {
			return err
		}
	}
	if drv.latOut != "" {
		suite := &bench.Suite{Benchmark: "streamsim-wire", GoMaxProcs: gort.GOMAXPROCS(0)}
		name := fmt.Sprintf("wire-loopback-ingest/batch=%d", cfg.batch)
		if nconn > 1 {
			name += fmt.Sprintf("/conns=%d", nconn)
		}
		var nsPerOp float64
		if batches > 0 {
			nsPerOp = float64(elapsed) / float64(batches)
		}
		suite.Add(bench.Result{
			Name:         name,
			EventsPerOp:  cfg.batch,
			NsPerOp:      nsPerOp,
			EventsPerSec: float64(okEvents) / elapsed.Seconds(),
			P50Ns:        p50, P99Ns: p99, P999Ns: p999,
		})
		if err := suite.WriteFile(drv.latOut); err != nil {
			return err
		}
	}
	if drv.shutdown {
		if err := conns[0].cl.Shutdown(); err != nil {
			return err
		}
		fmt.Println("shutdown:   remote acknowledged")
	}
	return nil
}

// retryWire retries a synchronous call across a background redial: while
// the link is down calls fail fast with ErrDisconnected, so a closed-loop
// step like the final drain/report waits the reconnect out.
func retryWire(f func() error) error {
	var err error
	for i := 0; i < 100; i++ {
		if err = f(); !errors.Is(err, client.ErrDisconnected) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return err
}
