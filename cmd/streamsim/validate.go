package main

import (
	"fmt"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/protospec"
)

// simParams collects every parsed flag value the run shape depends on, so
// flag validation is one pure function with table-driven tests instead of
// a switch buried in main. A bad combination must exit non-zero with a
// message, not panic in a protocol constructor or silently run a default.
type simParams struct {
	Tenants, Queries, Shards int
	N, Events, Batch         int
	Ingesters, Conns         int
	CheckEvery, SnapEvery    int
	Restore                  string
	Proto                    string
	K, R                     int
	QX, QY                   float64
	Width                    float64
	EpsPlus, EpsMinus        float64 // resolved: -eps overridden by -eps-plus/-eps-minus
	Cluster, MigrateEvery    int
	Listen, Connect          string
	Rate                     float64
	LatencyOut               string
	Shutdown                 bool
	ReadyFile                string
}

// tenantsMode reports whether the run hosts a runtime.Node: more than one
// tenant, or at least one multi-query tenant.
func (p simParams) tenantsMode() bool { return p.Tenants > 1 || p.Queries > 1 }

// wireMode reports whether the run is a serving-plane endpoint.
func (p simParams) wireMode() bool { return p.Listen != "" || p.Connect != "" }

// clusterMode reports whether the run hosts a multi-member cluster.
func (p simParams) clusterMode() bool { return p.Cluster > 0 }

// spatialMode reports whether the run hosts 2-D spatial tenants (which
// always run on a runtime.Node, even with -tenants 1).
func (p simParams) spatialMode() bool {
	return (protospec.Spec{Protocol: p.Proto}).Spatial()
}

// validate returns the first violated flag constraint. The protocol
// checks mirror the constructors' own panics.
func (p simParams) validate() error {
	switch {
	case p.Tenants < 1:
		return fmt.Errorf("-tenants must be at least 1, got %d", p.Tenants)
	case p.Queries < 1:
		return fmt.Errorf("-queries must be at least 1, got %d", p.Queries)
	case p.Shards == 0 || p.Shards < -1:
		return fmt.Errorf("-shards must be positive or -1 for GOMAXPROCS, got %d", p.Shards)
	case p.N < 1:
		return fmt.Errorf("-n must be at least 1, got %d", p.N)
	case p.Events < 0:
		return fmt.Errorf("-events must be non-negative, got %d", p.Events)
	case p.Batch < 1:
		return fmt.Errorf("-batch must be positive, got %d", p.Batch)
	case p.CheckEvery < 1:
		return fmt.Errorf("-check-every must be positive, got %d", p.CheckEvery)
	case p.SnapEvery < 0:
		return fmt.Errorf("-snapshot-every must be non-negative, got %d", p.SnapEvery)
	case (p.SnapEvery > 0 || p.Restore != "") && !p.tenantsMode() && !p.spatialMode():
		return fmt.Errorf("-snapshot-every and -restore need -tenants mode (pass -tenants > 1 or -queries > 1)")
	}
	switch {
	case p.Cluster < 0:
		return fmt.Errorf("-cluster must be non-negative, got %d", p.Cluster)
	case p.MigrateEvery < 0:
		return fmt.Errorf("-migrate-every must be non-negative, got %d", p.MigrateEvery)
	case p.MigrateEvery > 0 && !p.clusterMode():
		return fmt.Errorf("-migrate-every needs -cluster")
	case p.clusterMode() && p.wireMode():
		return fmt.Errorf("-cluster hosts in-process members; it is mutually exclusive with -listen/-connect")
	case p.clusterMode() && (p.SnapEvery > 0 || p.Restore != ""):
		return fmt.Errorf("node snapshots belong to single-node runs; migration already snapshots per tenant, so drop -snapshot-every/-restore from -cluster runs")
	}
	switch {
	case p.Listen != "" && p.Connect != "":
		return fmt.Errorf("-listen and -connect are mutually exclusive: a process is one end of the wire")
	case p.Rate < 0:
		return fmt.Errorf("-rate must be non-negative, got %g", p.Rate)
	case (p.Rate > 0 || p.LatencyOut != "" || p.Shutdown) && p.Connect == "":
		return fmt.Errorf("-rate, -latency-out and -shutdown need -connect")
	case p.ReadyFile != "" && p.Listen == "":
		return fmt.Errorf("-ready-file needs -listen")
	case p.wireMode() && (p.SnapEvery > 0 || p.Restore != ""):
		return fmt.Errorf("snapshots are driven by the node owner's local flags, not over the wire; drop -snapshot-every/-restore from -listen/-connect runs")
	}
	switch {
	case p.Ingesters < 1:
		return fmt.Errorf("-ingesters must be at least 1, got %d", p.Ingesters)
	case p.Ingesters > 1 && p.wireMode():
		return fmt.Errorf("-ingesters fans out local node ingest; on the wire each connection already ingests concurrently (use -conns with -connect)")
	case p.Ingesters > 1 && p.clusterMode():
		return fmt.Errorf("-ingesters fans out local node ingest; -cluster routes through its own router (drop -ingesters)")
	case p.Ingesters > 1 && !p.tenantsMode() && !p.spatialMode():
		return fmt.Errorf("-ingesters needs -tenants mode (pass -tenants > 1 or -queries > 1)")
	case p.Ingesters > 1 && (p.SnapEvery > 0 || p.Restore != ""):
		return fmt.Errorf("-snapshot-every/-restore resume by replaying a sequential ingest prefix, which concurrent ingesters do not produce; they need -ingesters 1")
	case p.Conns < 1:
		return fmt.Errorf("-conns must be at least 1, got %d", p.Conns)
	case p.Conns > 1 && p.Connect == "":
		return fmt.Errorf("-conns needs -connect")
	}
	switch p.Proto {
	case "ft-nrp", "ft-rp":
		tol := core.FractionTolerance{EpsPlus: p.EpsPlus, EpsMinus: p.EpsMinus}
		if err := tol.Validate(); err != nil {
			return err
		}
	}
	switch p.Proto {
	case "rtp":
		if p.K < 1 || p.R < 0 || p.K+p.R >= p.N {
			return fmt.Errorf("rtp needs k >= 1, r >= 0 and k+r < n; got k=%d r=%d n=%d", p.K, p.R, p.N)
		}
	case "zt-rp", "ft-rp":
		if p.K < 1 || p.K >= p.N {
			return fmt.Errorf("%s needs 1 <= k < n; got k=%d n=%d", p.Proto, p.K, p.N)
		}
	case "vb-knn":
		if p.K < 1 || p.K > p.N {
			return fmt.Errorf("vb-knn needs 1 <= k <= n; got k=%d n=%d", p.K, p.N)
		}
		if p.Width < 0 {
			return fmt.Errorf("vb-knn needs -width >= 0, got %g", p.Width)
		}
	}
	if p.spatialMode() {
		switch {
		case p.Queries > 1:
			return fmt.Errorf("%s tenants host a single standing query; drop -queries", p.Proto)
		case p.wireMode():
			return fmt.Errorf("%s runs in-process only; the serving plane does not carry spatial tenants yet (drop -listen/-connect)", p.Proto)
		case p.clusterMode():
			return fmt.Errorf("%s runs in-process only; the cluster plane does not place spatial tenants yet (drop -cluster)", p.Proto)
		}
		// The protospec invariants double as the flag checks, exactly as the
		// 1-D switches above mirror the constructors' panics.
		spec := protospec.Spec{
			Protocol: p.Proto, K: p.K, R: p.R, QX: p.QX, QY: p.QY,
			EpsPlus: p.EpsPlus, EpsMinus: p.EpsMinus,
		}
		if err := spec.Validate(p.N); err != nil {
			return err
		}
	}
	return nil
}
