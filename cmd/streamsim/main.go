// Command streamsim runs one configured simulation: a workload, a query, a
// protocol and a tolerance, printing the message accounting and (optionally)
// oracle verification. With -tenants it instead hosts many independent
// instances of that configuration on a sharded runtime.Node and reports
// per-tenant and node-level accounting plus ingest throughput.
//
// Examples:
//
//	streamsim -workload synthetic -protocol ft-nrp -eps 0.2
//	streamsim -workload tcp -protocol rtp -k 20 -r 5 -check
//	streamsim -workload synthetic -protocol ft-rp -k 50 -eps 0.3 -q 500
//	streamsim -tenants 16 -shards 4 -n 200 -events 5000 -protocol ft-nrp
//
// With -listen the process becomes the serving side of the wire: it hosts
// the configured node behind a TCP front end (internal/netserve) and
// applies whatever clients send, until a client's -shutdown or SIGINT.
// With -connect it becomes the driving side: an open-loop load generator
// that plays the configured workload against a remote -listen process,
// measures ingest ack latency against intended send deadlines, and can
// fetch the remote answer dump for byte-comparison with a local run:
//
//	streamsim -tenants 16 -shards 4 -listen :7070
//	streamsim -tenants 16 -connect localhost:7070 -rate 100000 \
//	    -latency-out BENCH_wire.json -answers remote.txt -shutdown
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptivefilters/internal/comm"
	"adaptivefilters/internal/core"
	"adaptivefilters/internal/experiment"
	"adaptivefilters/internal/protospec"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/runtime"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/workload"
)

// tenantWorkloadStream labels per-tenant workload seed derivation in
// -tenants mode, keeping workload randomness independent from the protocol
// seeds runtime.Node derives itself.
const tenantWorkloadStream int64 = 0x7EA1

func main() {
	var (
		wl        = flag.String("workload", "synthetic", "workload: synthetic | tcp | replay")
		trace     = flag.String("trace", "", "CSV trace file for -workload replay (time,stream,value)")
		proto     = flag.String("protocol", "ft-nrp", "protocol: no-filter | zt-nrp | ft-nrp | rtp | zt-rp | ft-rp | vb-knn | rtp2d | ft-rp2d")
		n         = flag.Int("n", 1000, "number of streams")
		events    = flag.Int("events", 50000, "approximate number of events")
		sigma     = flag.Float64("sigma", 20, "synthetic random-walk step deviation")
		seed      = flag.Int64("seed", 1, "determinism seed")
		lo        = flag.Float64("lo", 400, "range query lower bound")
		hi        = flag.Float64("hi", 600, "range query upper bound")
		k         = flag.Int("k", 20, "rank requirement for k-NN/top-k protocols")
		r         = flag.Int("r", 5, "rank slack for rtp")
		qpoint    = flag.Float64("q", 500, "k-NN query point (use -top for q=+inf)")
		qx        = flag.Float64("qx", 500, "spatial query point X for rtp2d/ft-rp2d")
		qy        = flag.Float64("qy", 500, "spatial query point Y for rtp2d/ft-rp2d")
		top       = flag.Bool("top", false, "use the top-k (q=+inf) transform")
		eps       = flag.Float64("eps", 0.2, "symmetric fraction tolerance ε⁺=ε⁻")
		width     = flag.Float64("width", 100, "value tolerance ε_v for vb-knn")
		epsP      = flag.Float64("eps-plus", -1, "explicit ε⁺ (overrides -eps)")
		epsM      = flag.Float64("eps-minus", -1, "explicit ε⁻ (overrides -eps)")
		sel       = flag.String("selection", "boundary", "silent filter selection: boundary | random")
		check     = flag.Bool("check", false, "verify answers against the ground-truth oracle")
		every     = flag.Int("check-every", 10, "oracle sampling period")
		verbose   = flag.Bool("v", false, "print the final answer set")
		tenants   = flag.Int("tenants", 1, "host this many independent (workload × query) tenants on one node")
		queries   = flag.Int("queries", 1, "standing queries per tenant: with -queries M > 1 each tenant is a composite multi-query tenant whose M queries (shifted copies of the configured query) share one value table, one counter and composite filters")
		shards    = flag.Int("shards", 1, "event-loop goroutines for -tenants mode (-1 = GOMAXPROCS)")
		batch     = flag.Int("batch", 512, "ingest batch size for -tenants mode")
		ingesters = flag.Int("ingesters", 1, "concurrent ingest goroutines for -tenants mode, each with its own runtime.Ingester; tenant i's traffic flows through ingester i mod N, so answers stay byte-identical at any count")
		conns     = flag.Int("conns", 1, "TCP connections for -connect, each with its own pipeline; tenant i's traffic flows through connection i mod N")
		answers   = flag.String("answers", "", "write a timing-free per-tenant answer/counter dump to this file (-tenants mode); byte-identical at any -shards, the CI determinism job diffs it")
		snapEvery = flag.Int("snapshot-every", 0, "take a barrier-consistent node snapshot about every N ingested events (-tenants mode; 0 = off)")
		snapFile  = flag.String("snapshot-file", "streamsim.snap", "file the latest -snapshot-every snapshot is written to")
		restore   = flag.String("restore", "", "resume from a node snapshot file instead of starting fresh (-tenants mode; pass the same workload/protocol flags as the snapshotting run)")
		clusterN  = flag.Int("cluster", 0, "host the tenants on this many in-process cluster members behind a consistent-hash router instead of one node (0 = off); answers stay byte-identical to a single node at any member count")
		migEvery  = flag.Int("migrate-every", 0, "with -cluster, force a round-robin live tenant migration about every N ingested events (0 = no forced migrations)")
		readyFile = flag.String("ready-file", "", "with -listen, write the resolved listen address to this file once the server is accepting (scripts poll it instead of sleeping)")
		listen    = flag.String("listen", "", "serve the configured node over TCP on this address (e.g. :7070) instead of ingesting locally")
		connect   = flag.String("connect", "", "drive a -listen process at this address with the configured workload instead of hosting a node")
		rate      = flag.Float64("rate", 0, "open-loop target ingest rate in events/sec for -connect (0 = unpaced)")
		latOut    = flag.String("latency-out", "", "write a bench suite JSON with the -connect run's throughput and p50/p99/p999 ack latency to this file")
		shutdownR = flag.Bool("shutdown", false, "ask the remote process to stop after a -connect run")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "streamsim: "+format+"\n", args...)
		fmt.Fprintln(os.Stderr, "run with -h for usage")
		os.Exit(2)
	}
	ep, em := *eps, *eps
	if *epsP >= 0 {
		ep = *epsP
	}
	if *epsM >= 0 {
		em = *epsM
	}
	params := simParams{
		Tenants: *tenants, Queries: *queries, Shards: *shards,
		N: *n, Events: *events, Batch: *batch,
		Ingesters: *ingesters, Conns: *conns,
		CheckEvery: *every, SnapEvery: *snapEvery, Restore: *restore,
		Proto: *proto, K: *k, R: *r, QX: *qx, QY: *qy,
		Width: *width, EpsPlus: ep, EpsMinus: em,
		Cluster: *clusterN, MigrateEvery: *migEvery,
		Listen: *listen, Connect: *connect, Rate: *rate,
		LatencyOut: *latOut, Shutdown: *shutdownR, ReadyFile: *readyFile,
	}
	if err := params.validate(); err != nil {
		fail("%v", err)
	}
	tenantsMode := params.tenantsMode()

	mkWorkload := func(wseed int64) (workload.Workload, error) {
		switch *wl {
		case "synthetic":
			cfg := workload.SyntheticConfig{
				N: *n, Lo: 0, Hi: 1000, MeanGap: 20, Sigma: *sigma,
				Horizon: float64(*events) * 20 / float64(*n), Seed: wseed,
			}
			return workload.NewSynthetic(cfg)
		case "tcp":
			cfg := workload.DefaultTCPLike(*events, wseed)
			cfg.N = *n
			return workload.NewTCPLike(cfg)
		case "replay":
			f, err := os.Open(*trace)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return workload.ParseCSV(*trace, f, 0)
		default:
			return nil, fmt.Errorf("unknown workload %q", *wl)
		}
	}

	// Spatial protocols always run on a runtime.Node (even with -tenants 1):
	// there is no 1-D experiment harness for them, and validate has already
	// rejected the modes the spatial plane does not reach yet.
	if params.spatialMode() {
		if *check {
			fmt.Fprintln(os.Stderr, "streamsim: -check is not supported for spatial protocols and is ignored")
		}
		cfg := tenantsConfig{
			tenants: *tenants, queries: 1, shards: *shards, batch: *batch,
			ingesters: *ingesters, seed: *seed,
			proto: *proto, verbose: *verbose, answers: *answers,
			snapEvery: *snapEvery, snapFile: *snapFile, restore: *restore,
		}
		sspec := protospec.Spec{
			Protocol: *proto, K: *k, R: *r, QX: *qx, QY: *qy, EpsPlus: ep, EpsMinus: em,
		}
		if err := runSpatialTenants(cfg, sspec, *n, *events, *sigma); err != nil {
			fmt.Fprintln(os.Stderr, "streamsim:", err)
			os.Exit(2)
		}
		return
	}

	tol := core.FractionTolerance{EpsPlus: ep, EpsMinus: em}
	selection := core.SelectBoundaryNearest
	if strings.HasPrefix(*sel, "r") {
		selection = core.SelectRandom
	}
	rng := query.NewRange(*lo, *hi)
	center := query.At(*qpoint)
	if *top {
		center = query.Top()
	}

	// mk builds the configured protocol's factory for one concrete query
	// (range or center); -queries derives shifted variants of the base query
	// through it, so every protocol works on the multi-query plane.
	var spec *experiment.CheckSpec
	var mk func(rng query.Range, center query.Center) func(c server.Host, seed int64) server.Protocol
	switch *proto {
	case "no-filter":
		mk = func(rng query.Range, _ query.Center) func(server.Host, int64) server.Protocol {
			return func(c server.Host, _ int64) server.Protocol { return core.NewNoFilterRange(c, rng) }
		}
		if *check {
			spec = experiment.CheckFractionRange(rng, core.FractionTolerance{}, *every)
		}
	case "zt-nrp":
		mk = func(rng query.Range, _ query.Center) func(server.Host, int64) server.Protocol {
			return func(c server.Host, _ int64) server.Protocol { return core.NewZTNRP(c, rng) }
		}
		if *check {
			spec = experiment.CheckFractionRange(rng, core.FractionTolerance{}, *every)
		}
	case "ft-nrp":
		mk = func(rng query.Range, _ query.Center) func(server.Host, int64) server.Protocol {
			return func(c server.Host, seed int64) server.Protocol {
				return core.NewFTNRP(c, rng, core.FTNRPConfig{Tol: tol, Selection: selection, Seed: seed})
			}
		}
		if *check {
			spec = experiment.CheckFractionRange(rng, tol, *every)
		}
	case "rtp":
		rt := core.RankTolerance{K: *k, R: *r}
		mk = func(_ query.Range, center query.Center) func(server.Host, int64) server.Protocol {
			return func(c server.Host, _ int64) server.Protocol { return core.NewRTP(c, center, rt) }
		}
		if *check {
			spec = experiment.CheckRank(center, rt, *every)
		}
	case "zt-rp":
		mk = func(_ query.Range, center query.Center) func(server.Host, int64) server.Protocol {
			return func(c server.Host, _ int64) server.Protocol { return core.NewZTRP(c, center, *k) }
		}
		if *check {
			spec = experiment.CheckRank(center, core.RankTolerance{K: *k}, *every)
		}
	case "ft-rp":
		mk = func(_ query.Range, center query.Center) func(server.Host, int64) server.Protocol {
			return func(c server.Host, seed int64) server.Protocol {
				fc := core.DefaultFTRPConfig(tol)
				fc.Selection = selection
				fc.Seed = seed
				return core.NewFTRP(c, center, *k, fc)
			}
		}
		if *check {
			spec = experiment.CheckFractionKNN(query.KNN{Q: center, K: *k}, tol, *every)
		}
	case "vb-knn":
		mk = func(_ query.Range, center query.Center) func(server.Host, int64) server.Protocol {
			return func(c server.Host, _ int64) server.Protocol {
				return core.NewVBKNN(c, query.KNN{Q: center, K: *k}, *width)
			}
		}
		if *check {
			// The value-based baseline offers no rank guarantee; checking it
			// against a rank tolerance quantifies exactly that (Figure 1).
			spec = experiment.CheckRank(center, core.RankTolerance{K: *k, R: *r}, *every)
		}
	default:
		fmt.Fprintf(os.Stderr, "streamsim: unknown protocol %q\n", *proto)
		os.Exit(2)
	}
	build := mk(rng, center)
	// buildQuery derives query j's factory: range windows shift by a quarter
	// span per query (staying overlapped, where composite sharing matters),
	// k-NN centers by an eighth span of the range flags. Query 0 is exactly
	// the base query.
	buildQuery := func(j int) func(c server.Host, seed int64) server.Protocol {
		span := *hi - *lo
		shift := float64(j) * span / 4
		qrng := query.NewRange(*lo+shift, *hi+shift)
		qcenter := query.At(*qpoint + float64(j)*span/8)
		if *top {
			qcenter = query.Top()
		}
		return mk(qrng, qcenter)
	}
	// declQuery is buildQuery's declarative twin: the same query-j shift,
	// compiled into a protospec the cluster's migration plane can serialize.
	// protospec.Spec.Factory constructs protocols exactly as mk does, so the
	// two forms are interchangeable bit for bit.
	declQuery := func(j int) protospec.Spec {
		span := *hi - *lo
		shift := float64(j) * span / 4
		s := protospec.Spec{
			Protocol: *proto, Lo: *lo + shift, Hi: *hi + shift,
			K: *k, R: *r, Q: *qpoint + float64(j)*span/8, Top: *top,
			EpsPlus: ep, EpsMinus: em, Width: *width,
		}
		if selection == core.SelectRandom {
			s.Selection = protospec.SelectRandom
		}
		return s
	}

	if params.wireMode() || tenantsMode || params.clusterMode() {
		if *check {
			fmt.Fprintln(os.Stderr, "streamsim: -check is ignored in -tenants and wire modes")
		}
		cfg := tenantsConfig{
			tenants: *tenants, queries: *queries, shards: *shards, batch: *batch,
			ingesters: *ingesters, seed: *seed,
			proto: *proto, verbose: *verbose, answers: *answers,
			snapEvery: *snapEvery, snapFile: *snapFile, restore: *restore,
		}
		var err error
		switch {
		case *listen != "":
			err = runListen(*listen, *readyFile, cfg, mkWorkload, build, buildQuery)
		case *connect != "":
			err = runConnect(*connect, cfg,
				wireDrive{rate: *rate, latOut: *latOut, shutdown: *shutdownR, conns: *conns},
				mkWorkload, build, buildQuery)
		case *clusterN > 0:
			err = runClusterSim(cfg, *clusterN, *migEvery, mkWorkload, declQuery)
		default:
			err = runTenants(cfg, mkWorkload, build, buildQuery)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "streamsim:", err)
			os.Exit(2)
		}
		return
	}

	w, err := mkWorkload(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamsim:", err)
		os.Exit(2)
	}
	cfg := experiment.Config{Workload: w, Seed: *seed, NewProtocol: build, Check: spec}

	res := experiment.Run(cfg)

	fmt.Printf("workload:   %s\n", res.Workload)
	fmt.Printf("protocol:   %s\n", res.Protocol)
	fmt.Printf("events:     %d\n", res.Events)
	fmt.Printf("init msgs:  %d (excluded from the paper's metric)\n", res.InitMessages)
	fmt.Printf("maintenance messages: %d\n", res.MaintMessages)
	kinds := make([]string, 0, len(res.ByKind))
	for kind := range res.ByKind {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		fmt.Printf("  %-12s %d\n", kind, res.ByKind[kind])
	}
	fmt.Printf("server ops: %d\n", res.ServerOps)
	if spec != nil {
		fmt.Printf("oracle:     %d checks, %d violations", res.Checks, res.Violations)
		if res.FirstViolation != "" {
			fmt.Printf(" (first: %s)", res.FirstViolation)
		}
		fmt.Println()
		if res.MaxFPlus > 0 || res.MaxFMinus > 0 {
			fmt.Printf("worst observed F⁺=%.3f F⁻=%.3f\n", res.MaxFPlus, res.MaxFMinus)
		}
	}
	if *verbose {
		fmt.Printf("answer (%d): %v\n", len(res.FinalAnswer), res.FinalAnswer)
	} else {
		fmt.Printf("answer size: %d\n", len(res.FinalAnswer))
	}
}

// tenantsConfig bundles the -tenants mode flags.
type tenantsConfig struct {
	tenants, queries, shards, batch int
	ingesters                       int
	seed                            int64
	proto                           string
	verbose                         bool
	answers                         string
	snapEvery                       int
	snapFile                        string
	restore                         string
}

// runTenants hosts `tenants` independent copies of the configured
// (workload × protocol) pair on one runtime.Node: tenant i's workload is
// derived from the base seed and i, its protocol seed from the node seed
// via the runtime's own derivation. Events from all tenants are merged into
// one time-ordered ingress stream and ingested in batches, mimicking a
// mixed multi-tenant uplink. With queries > 1 each tenant instead hosts
// that many standing queries — shifted variants of the configured query,
// built by buildQuery — on one composite fabric, so one update message
// covers every query it affects.
//
// With snapEvery > 0 the node snapshots itself about every snapEvery
// ingested events (at the next batch boundary), overwriting snapFile each
// time. With restore set, the node resumes from that snapshot instead of
// initializing, skips the merged events the snapshot already covers, and
// continues — with the same flags, the final answers are byte-identical to
// an uninterrupted run at any shard count.
func runTenants(cfg tenantsConfig,
	mkWorkload func(int64) (workload.Workload, error),
	build func(c server.Host, seed int64) server.Protocol,
	buildQuery func(j int) func(c server.Host, seed int64) server.Protocol) error {

	specs, iters, err := buildSpecs(cfg, mkWorkload, build, buildQuery)
	if err != nil {
		return err
	}
	return runNodeSim(cfg, specs, iters)
}

// runNodeSim hosts the given tenant specs on one runtime.Node and plays the
// per-tenant iterators into it as a merged time-ordered ingress stream —
// the shared back half of -tenants mode and the spatial mode (which differ
// only in how they build specs and workloads). Spatial events carry their
// second coordinate in Event.Y; 1-D workloads leave it zero.
func runNodeSim(cfg tenantsConfig, specs []runtime.TenantSpec, iters []workload.Iterator) error {
	merge := workload.MergeIterators(iters)

	var node *runtime.Node
	var skip uint64
	if cfg.restore != "" {
		data, err := os.ReadFile(cfg.restore)
		if err != nil {
			return err
		}
		node, err = runtime.RestoreNode(runtime.Config{Shards: cfg.shards, Seed: cfg.seed}, specs, data)
		if err != nil {
			return fmt.Errorf("restoring %s: %w", cfg.restore, err)
		}
		// The merged ingress order is deterministic, so the events already
		// applied before the snapshot barrier are exactly its first
		// TotalEvents() entries.
		skip = node.TotalEvents()
		fmt.Printf("restored:   %s (%d events already applied)\n", cfg.restore, skip)
	} else {
		var err error
		node, err = runtime.NewNode(runtime.Config{Shards: cfg.shards, Seed: cfg.seed}, specs)
		if err != nil {
			return err
		}
	}
	if err := node.Start(context.Background()); err != nil {
		return err
	}
	defer node.Stop()

	// Wait out the t0 initialization running in the shard loops, so the
	// throughput figure measures steady-state ingest, not setup.
	if err := node.Drain(); err != nil {
		return err
	}
	start := time.Now()
	var ingested uint64
	if cfg.ingesters > 1 {
		// validate has already rejected -snapshot-every/-restore here: the
		// snapshot's replay cut assumes a sequential global ingest prefix.
		var err error
		if ingested, err = fanOutIngest(node, merge, cfg.ingesters, cfg.batch); err != nil {
			return err
		}
	} else if err := sequentialIngest(node, merge, cfg, skip, &ingested); err != nil {
		return err
	}
	if err := node.Drain(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	node.Stop()

	ningest := cfg.ingesters
	if ningest < 1 {
		ningest = 1
	}
	fmt.Printf("tenants:    %d   queries/tenant: %d   shards: %d   batch: %d   ingesters: %d\n",
		cfg.tenants, cfg.queries, node.Shards(), cfg.batch, ningest)
	fmt.Printf("ingested:   %d events in %v (%.0f events/sec)\n",
		ingested, elapsed.Round(time.Millisecond), float64(ingested)/elapsed.Seconds())
	var worst, total uint64
	for i := 0; i < cfg.tenants; i++ {
		c := node.Counter(i)
		if cfg.verbose || cfg.tenants <= 8 {
			fmt.Printf("  %-28s events=%-7d maint=%-7d answers=%s\n",
				node.TenantName(i), node.Events(i), c.Maintenance(), answerSizes(node, i))
		}
		if m := c.Maintenance(); m > worst {
			worst = m
		}
		total += c.Maintenance()
	}
	totals := node.Totals()
	fmt.Printf("node totals: init=%d maintenance=%d serverOps=%d (worst tenant maint=%d, mean=%.1f)\n",
		totals.PhaseTotal(comm.Init), totals.Maintenance(), totals.ServerOps,
		worst, float64(total)/float64(cfg.tenants))
	if cfg.verbose {
		for _, st := range node.ShardStats() {
			fmt.Printf("  shard %-3d queued=%-4d applied=%-8d tenants=%d\n",
				st.Shard, st.Queued, st.Applied, st.Tenants)
		}
	}
	if cfg.answers != "" {
		if err := writeAnswers(cfg.answers, node); err != nil {
			return err
		}
	}
	return nil
}

// sequentialIngest is the single-caller ingest path: the merged stream is
// batched in arrival order through Node.Ingest, the first skip events are
// dropped (already applied before a restored snapshot's barrier), and with
// cfg.snapEvery > 0 the node snapshots itself at batch boundaries. Only this
// path supports snapshots — its global ingest order is what a restore replays.
func sequentialIngest(node *runtime.Node, merge *workload.TaggedIterator,
	cfg tenantsConfig, skip uint64, ingested *uint64) error {

	nextSnap := uint64(0)
	if cfg.snapEvery > 0 {
		nextSnap = skip + uint64(cfg.snapEvery)
	}
	buf := make([]runtime.Event, 0, cfg.batch)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := node.Ingest(buf); err != nil {
			return err
		}
		*ingested += uint64(len(buf))
		buf = buf[:0]
		if nextSnap > 0 && skip+*ingested >= nextSnap {
			snap, err := node.Snapshot()
			if err != nil {
				return err
			}
			if err := os.WriteFile(cfg.snapFile, snap, 0o644); err != nil {
				return err
			}
			for nextSnap <= skip+*ingested {
				nextSnap += uint64(cfg.snapEvery)
			}
		}
		return nil
	}
	// The per-tenant streams merge on event time (ties by tenant index), so
	// the ingress order is deterministic and globally time-sorted.
	var seen uint64
	for {
		tev, ok := merge.Next()
		if !ok {
			break
		}
		seen++
		if seen <= skip {
			continue // already applied before the snapshot barrier
		}
		buf = append(buf, runtime.Event{
			Tenant: tev.Source, Stream: tev.Event.Stream,
			Value: tev.Event.Value, Y: tev.Event.Y,
		})
		if len(buf) == cfg.batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// fanOutIngest plays the merged ingress stream through n concurrent ingest
// goroutines, each owning one runtime.Ingester. Tenant i's events stage into
// goroutine i mod n's batches, so every tenant's traffic flows through
// exactly one ingester — the schedule the runtime guarantees bit-identical
// to a single-caller run — while different tenant groups route concurrently.
// Each lane's batches are sent in staging order over an in-order channel, so
// per-tenant event order is preserved end to end.
func fanOutIngest(node *runtime.Node, merge *workload.TaggedIterator, n, batchSize int) (uint64, error) {
	type lane struct {
		in   chan []runtime.Event // full batches, in per-lane order
		free chan []runtime.Event // recycled batch buffers
	}
	lanes := make([]lane, n)
	errs := make([]error, n) // errs[g] written only by goroutine g, read after Wait
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		lanes[g] = lane{
			in:   make(chan []runtime.Event, 2),
			free: make(chan []runtime.Event, 4),
		}
		for i := 0; i < 4; i++ {
			lanes[g].free <- make([]runtime.Event, 0, batchSize)
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ing := node.NewIngester()
			for b := range lanes[g].in {
				if errs[g] == nil {
					errs[g] = ing.Ingest(b)
				}
				lanes[g].free <- b[:0]
			}
		}(g)
	}
	stage := make([][]runtime.Event, n)
	for g := range stage {
		stage[g] = <-lanes[g].free
	}
	var ingested uint64
	for {
		tev, ok := merge.Next()
		if !ok {
			break
		}
		g := tev.Source % n
		stage[g] = append(stage[g], runtime.Event{
			Tenant: tev.Source, Stream: tev.Event.Stream,
			Value: tev.Event.Value, Y: tev.Event.Y,
		})
		ingested++
		if len(stage[g]) == batchSize {
			lanes[g].in <- stage[g]
			stage[g] = <-lanes[g].free
		}
	}
	for g := 0; g < n; g++ {
		if len(stage[g]) > 0 {
			lanes[g].in <- stage[g]
		}
		close(lanes[g].in)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ingested, err
		}
	}
	return ingested, nil
}

// answerSizes renders a tenant's answer-set size — per query slot for a
// multi-query tenant.
func answerSizes(node *runtime.Node, ti int) string {
	if !node.MultiQuery(ti) {
		return fmt.Sprintf("%d", len(node.Answer(ti)))
	}
	var b strings.Builder
	for qi := 0; qi < node.NumQueries(ti); qi++ {
		if qi > 0 {
			b.WriteString("/")
		}
		if !node.QueryAlive(ti, qi) {
			b.WriteString("-")
			continue
		}
		fmt.Fprintf(&b, "%d", len(node.QueryAnswer(ti, qi)))
	}
	return b.String()
}

// writeAnswers dumps every tenant's final answer set (every query's, for
// multi-query tenants) and message counter plus the node totals, with
// nothing time- or shard-dependent: the same (seed, tenants, queries,
// workload) must produce byte-identical dumps at any shard count. CI's
// determinism job runs -shards 1 and -shards 4 and diffs; the wire job
// additionally diffs this dump against one rendered from a report decoded
// off the network (runtime.Report.Text is the single renderer both use).
func writeAnswers(path string, node *runtime.Node) error {
	return os.WriteFile(path, []byte(node.Report().Text()), 0o644)
}
