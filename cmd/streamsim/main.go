// Command streamsim runs one configured simulation: a workload, a query, a
// protocol and a tolerance, printing the message accounting and (optionally)
// oracle verification.
//
// Examples:
//
//	streamsim -workload synthetic -protocol ft-nrp -eps 0.2
//	streamsim -workload tcp -protocol rtp -k 20 -r 5 -check
//	streamsim -workload synthetic -protocol ft-rp -k 50 -eps 0.3 -q 500
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/experiment"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "synthetic", "workload: synthetic | tcp | replay")
		trace   = flag.String("trace", "", "CSV trace file for -workload replay (time,stream,value)")
		proto   = flag.String("protocol", "ft-nrp", "protocol: no-filter | zt-nrp | ft-nrp | rtp | zt-rp | ft-rp | vb-knn")
		n       = flag.Int("n", 1000, "number of streams")
		events  = flag.Int("events", 50000, "approximate number of events")
		sigma   = flag.Float64("sigma", 20, "synthetic random-walk step deviation")
		seed    = flag.Int64("seed", 1, "determinism seed")
		lo      = flag.Float64("lo", 400, "range query lower bound")
		hi      = flag.Float64("hi", 600, "range query upper bound")
		k       = flag.Int("k", 20, "rank requirement for k-NN/top-k protocols")
		r       = flag.Int("r", 5, "rank slack for rtp")
		qpoint  = flag.Float64("q", 500, "k-NN query point (use -top for q=+inf)")
		top     = flag.Bool("top", false, "use the top-k (q=+inf) transform")
		eps     = flag.Float64("eps", 0.2, "symmetric fraction tolerance ε⁺=ε⁻")
		width   = flag.Float64("width", 100, "value tolerance ε_v for vb-knn")
		epsP    = flag.Float64("eps-plus", -1, "explicit ε⁺ (overrides -eps)")
		epsM    = flag.Float64("eps-minus", -1, "explicit ε⁻ (overrides -eps)")
		sel     = flag.String("selection", "boundary", "silent filter selection: boundary | random")
		check   = flag.Bool("check", false, "verify answers against the ground-truth oracle")
		every   = flag.Int("check-every", 10, "oracle sampling period")
		verbose = flag.Bool("v", false, "print the final answer set")
	)
	flag.Parse()

	var w workload.Workload
	var err error
	switch *wl {
	case "synthetic":
		cfg := workload.SyntheticConfig{
			N: *n, Lo: 0, Hi: 1000, MeanGap: 20, Sigma: *sigma,
			Horizon: float64(*events) * 20 / float64(*n), Seed: *seed,
		}
		w, err = workload.NewSynthetic(cfg)
	case "tcp":
		cfg := workload.DefaultTCPLike(*events, *seed)
		cfg.N = *n
		w, err = workload.NewTCPLike(cfg)
	case "replay":
		var f *os.File
		f, err = os.Open(*trace)
		if err == nil {
			w, err = workload.ParseCSV(*trace, f, 0)
			f.Close()
		}
	default:
		err = fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamsim:", err)
		os.Exit(2)
	}

	ep, em := *eps, *eps
	if *epsP >= 0 {
		ep = *epsP
	}
	if *epsM >= 0 {
		em = *epsM
	}
	tol := core.FractionTolerance{EpsPlus: ep, EpsMinus: em}
	selection := core.SelectBoundaryNearest
	if strings.HasPrefix(*sel, "r") {
		selection = core.SelectRandom
	}
	rng := query.NewRange(*lo, *hi)
	center := query.At(*qpoint)
	if *top {
		center = query.Top()
	}

	var spec *experiment.CheckSpec
	cfg := experiment.Config{Workload: w, Seed: *seed}
	switch *proto {
	case "no-filter":
		cfg.NewProtocol = func(c *server.Cluster, _ int64) server.Protocol {
			return core.NewNoFilterRange(c, rng)
		}
		if *check {
			spec = experiment.CheckFractionRange(rng, core.FractionTolerance{}, *every)
		}
	case "zt-nrp":
		cfg.NewProtocol = func(c *server.Cluster, _ int64) server.Protocol {
			return core.NewZTNRP(c, rng)
		}
		if *check {
			spec = experiment.CheckFractionRange(rng, core.FractionTolerance{}, *every)
		}
	case "ft-nrp":
		cfg.NewProtocol = func(c *server.Cluster, seed int64) server.Protocol {
			return core.NewFTNRP(c, rng, core.FTNRPConfig{Tol: tol, Selection: selection, Seed: seed})
		}
		if *check {
			spec = experiment.CheckFractionRange(rng, tol, *every)
		}
	case "rtp":
		rt := core.RankTolerance{K: *k, R: *r}
		cfg.NewProtocol = func(c *server.Cluster, _ int64) server.Protocol {
			return core.NewRTP(c, center, rt)
		}
		if *check {
			spec = experiment.CheckRank(center, rt, *every)
		}
	case "zt-rp":
		cfg.NewProtocol = func(c *server.Cluster, _ int64) server.Protocol {
			return core.NewZTRP(c, center, *k)
		}
		if *check {
			spec = experiment.CheckRank(center, core.RankTolerance{K: *k}, *every)
		}
	case "ft-rp":
		cfg.NewProtocol = func(c *server.Cluster, seed int64) server.Protocol {
			fc := core.DefaultFTRPConfig(tol)
			fc.Selection = selection
			fc.Seed = seed
			return core.NewFTRP(c, center, *k, fc)
		}
		if *check {
			spec = experiment.CheckFractionKNN(query.KNN{Q: center, K: *k}, tol, *every)
		}
	case "vb-knn":
		cfg.NewProtocol = func(c *server.Cluster, _ int64) server.Protocol {
			return core.NewVBKNN(c, query.KNN{Q: center, K: *k}, *width)
		}
		if *check {
			// The value-based baseline offers no rank guarantee; checking it
			// against a rank tolerance quantifies exactly that (Figure 1).
			spec = experiment.CheckRank(center, core.RankTolerance{K: *k, R: *r}, *every)
		}
	default:
		fmt.Fprintf(os.Stderr, "streamsim: unknown protocol %q\n", *proto)
		os.Exit(2)
	}
	cfg.Check = spec

	res := experiment.Run(cfg)

	fmt.Printf("workload:   %s\n", res.Workload)
	fmt.Printf("protocol:   %s\n", res.Protocol)
	fmt.Printf("events:     %d\n", res.Events)
	fmt.Printf("init msgs:  %d (excluded from the paper's metric)\n", res.InitMessages)
	fmt.Printf("maintenance messages: %d\n", res.MaintMessages)
	kinds := make([]string, 0, len(res.ByKind))
	for kind := range res.ByKind {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		fmt.Printf("  %-12s %d\n", kind, res.ByKind[kind])
	}
	fmt.Printf("server ops: %d\n", res.ServerOps)
	if spec != nil {
		fmt.Printf("oracle:     %d checks, %d violations", res.Checks, res.Violations)
		if res.FirstViolation != "" {
			fmt.Printf(" (first: %s)", res.FirstViolation)
		}
		fmt.Println()
		if res.MaxFPlus > 0 || res.MaxFMinus > 0 {
			fmt.Printf("worst observed F⁺=%.3f F⁻=%.3f\n", res.MaxFPlus, res.MaxFMinus)
		}
	}
	if *verbose {
		fmt.Printf("answer (%d): %v\n", len(res.FinalAnswer), res.FinalAnswer)
	} else {
		fmt.Printf("answer size: %d\n", len(res.FinalAnswer))
	}
}
