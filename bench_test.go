package adaptivefilters_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"adaptivefilters/internal/core"
	"adaptivefilters/internal/experiment"
	"adaptivefilters/internal/metrics"
	"adaptivefilters/internal/multiquery"
	"adaptivefilters/internal/query"
	"adaptivefilters/internal/server"
	"adaptivefilters/internal/workload"
)

// benchScale keeps each figure bench to a fraction of the default workload
// so `go test -bench=.` completes quickly; run cmd/figures for full-size
// tables.
const benchScale = 0.05

// benchFigure runs one paper figure per iteration and reports the total of
// its message cells so regressions in protocol efficiency show up as metric
// changes.
func benchFigure(b *testing.B, run func(experiment.Options) *metrics.Table, cols []string) {
	b.Helper()
	benchFigureWorkers(b, run, cols, 0)
}

// benchFigureWorkers is benchFigure with an explicit cell-engine pool size
// (0 = sequential).
func benchFigureWorkers(b *testing.B, run func(experiment.Options) *metrics.Table, cols []string, workers int) {
	b.Helper()
	opts := experiment.Options{Scale: benchScale, Seed: 1, Workers: workers}
	var total uint64
	for i := 0; i < b.N; i++ {
		tbl := run(opts)
		total = 0
		for _, col := range cols {
			series, err := experiment.ColumnUint(tbl, col)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range series {
				total += v
			}
		}
	}
	b.ReportMetric(float64(total), "maint-msgs")
}

// BenchmarkFigure01 regenerates the Figure 1 motivation experiment
// (value-based vs rank-based tolerance).
func BenchmarkFigure01(b *testing.B) {
	benchFigure(b, experiment.Figure1, []string{"maint msgs"})
}

// BenchmarkFigure09 regenerates Figure 9 (RTP: effect of r, TCP-like top-k).
func BenchmarkFigure09(b *testing.B) {
	benchFigure(b, experiment.Figure9, []string{"k=15", "k=20", "k=25", "k=30"})
}

// BenchmarkFigure10 regenerates Figure 10 (FT-NRP ε-surface, TCP-like).
func BenchmarkFigure10(b *testing.B) {
	benchFigure(b, experiment.Figure10, []string{"0.0", "0.5"})
}

// BenchmarkFigure11 regenerates Figure 11 (FT-NRP scalability).
func BenchmarkFigure11(b *testing.B) {
	benchFigure(b, experiment.Figure11, []string{"ε=0.0", "ε=0.5"})
}

// BenchmarkFigure12 regenerates Figure 12 (FT-NRP ε-surface, synthetic).
func BenchmarkFigure12(b *testing.B) {
	benchFigure(b, experiment.Figure12, []string{"0.0", "0.5"})
}

// BenchmarkFigure13 regenerates Figure 13 (FT-NRP under data fluctuation).
func BenchmarkFigure13(b *testing.B) {
	benchFigure(b, experiment.Figure13, []string{"σ=20", "σ=100"})
}

// BenchmarkFigure14 regenerates Figure 14 (selection heuristics).
func BenchmarkFigure14(b *testing.B) {
	benchFigure(b, experiment.Figure14, []string{"random", "boundary-nearest"})
}

// BenchmarkFigure15 regenerates Figure 15 (ZT-RP vs FT-RP).
func BenchmarkFigure15(b *testing.B) {
	benchFigure(b, experiment.Figure15, []string{"k=20", "k=60", "k=100"})
}

// BenchmarkFigureEngine compares the sequential and the parallel cell-engine
// paths regenerating the same figures: identical tables (the engine derives
// one seed per cell from the grid coordinates), wall-clock divided by the
// worker pool. Figure 13 (30 cells) and Figure 12 (36 cells) are the most
// cell-rich grids.
func BenchmarkFigureEngine(b *testing.B) {
	figs := []struct {
		name string
		run  func(experiment.Options) *metrics.Table
		cols []string
	}{
		{"Figure12", experiment.Figure12, []string{"0.0", "0.5"}},
		{"Figure13", experiment.Figure13, []string{"σ=20", "σ=100"}},
	}
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, f := range figs {
		for _, workers := range counts {
			b.Run(fmt.Sprintf("%s/workers=%d", f.name, workers), func(b *testing.B) {
				benchFigureWorkers(b, f.run, f.cols, workers)
			})
		}
	}
}

// --- ablation benches (design choices documented in DESIGN.md) --------------

func synWorkload(b *testing.B, n, events int, sigma float64) workload.Workload {
	b.Helper()
	cfg := workload.SyntheticConfig{
		N: n, Lo: 0, Hi: 1000, MeanGap: 20, Sigma: sigma,
		Horizon: float64(events) * 20 / float64(n), Seed: 11,
	}
	w, err := workload.NewSynthetic(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// driftWorkload is an unbounded random walk: streams diffuse away from the
// query range over time, so answer removals outnumber insertions and the
// Fix_Error / re-initialization paths are exercised heavily.
func driftWorkload(b *testing.B, n, events int, sigma float64) workload.Workload {
	b.Helper()
	cfg := workload.SyntheticConfig{
		N: n, Lo: 0, Hi: 1000, MeanGap: 20, Sigma: sigma,
		Horizon: float64(events) * 20 / float64(n), Seed: 11, ClampOff: true,
	}
	w, err := workload.NewSynthetic(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func reportMsgs(b *testing.B, run func() uint64) {
	b.Helper()
	var msgs uint64
	for i := 0; i < b.N; i++ {
		msgs = run()
	}
	b.ReportMetric(float64(msgs), "maint-msgs")
}

// BenchmarkAblationStrictVsFaithful compares the strict Fix_Error variant
// (close the false-negative accounting leak) against the pseudocode-faithful
// one.
func BenchmarkAblationStrictVsFaithful(b *testing.B) {
	for _, faithful := range []bool{false, true} {
		name := "strict"
		if faithful {
			name = "faithful"
		}
		b.Run(name, func(b *testing.B) {
			w := driftWorkload(b, 300, 60000, 80)
			rng := query.NewRange(400, 600)
			tol := core.FractionTolerance{EpsPlus: 0.3, EpsMinus: 0.3}
			reportMsgs(b, func() uint64 {
				res := experiment.Run(experiment.Config{
					Workload: w,
					NewProtocol: func(c server.Host, _ int64) server.Protocol {
						return core.NewFTNRP(c, rng, core.FTNRPConfig{
							Tol: tol, Selection: core.SelectBoundaryNearest,
							Faithful: faithful,
						})
					},
				})
				return res.MaintMessages
			})
		})
	}
}

// BenchmarkAblationReinit compares re-initializing on silent-filter
// depletion against letting FT-NRP degrade to ZT-NRP.
func BenchmarkAblationReinit(b *testing.B) {
	for _, policy := range []core.ReinitPolicy{core.ReinitAlways, core.ReinitNever} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			w := driftWorkload(b, 300, 60000, 80)
			rng := query.NewRange(400, 600)
			tol := core.FractionTolerance{EpsPlus: 0.3, EpsMinus: 0.3}
			reportMsgs(b, func() uint64 {
				res := experiment.Run(experiment.Config{
					Workload: w,
					NewProtocol: func(c server.Host, _ int64) server.Protocol {
						return core.NewFTNRP(c, rng, core.FTNRPConfig{
							Tol: tol, Selection: core.SelectBoundaryNearest,
							Reinit: policy,
						})
					},
				})
				return res.MaintMessages
			})
		})
	}
}

// BenchmarkAblationRhoSplit sweeps the λ split of the Equation 16 frontier
// between false-positive and false-negative silent filters for FT-RP.
func BenchmarkAblationRhoSplit(b *testing.B) {
	for _, lambda := range []float64{0, 0.25, 0.5, 0.75, 1} {
		lambda := lambda
		b.Run(fmt.Sprintf("lambda=%.2f", lambda), func(b *testing.B) {
			w := synWorkload(b, 1000, 20000, 20)
			tol := core.FractionTolerance{EpsPlus: 0.4, EpsMinus: 0.4}
			reportMsgs(b, func() uint64 {
				res := experiment.Run(experiment.Config{
					Workload: w,
					NewProtocol: func(c server.Host, _ int64) server.Protocol {
						cfg := core.DefaultFTRPConfig(tol)
						cfg.Lambda = lambda
						return core.NewFTRP(c, query.At(500), 40, cfg)
					},
				})
				return res.MaintMessages
			})
		})
	}
}

// BenchmarkAblationBroadcast compares per-stream bound announcements (the
// paper's accounting) with a broadcast medium where one install reaches all
// streams.
func BenchmarkAblationBroadcast(b *testing.B) {
	for _, broadcast := range []bool{false, true} {
		name := "per-stream"
		if broadcast {
			name = "broadcast"
		}
		broadcast := broadcast
		b.Run(name, func(b *testing.B) {
			w := synWorkload(b, 1000, 20000, 20)
			tol := core.RankTolerance{K: 20, R: 5}
			reportMsgs(b, func() uint64 {
				res := experiment.Run(experiment.Config{
					Workload: w,
					Cluster:  server.Config{BroadcastInstall: broadcast},
					NewProtocol: func(c server.Host, _ int64) server.Protocol {
						return core.NewRTP(c, query.At(500), tol)
					},
				})
				return res.MaintMessages
			})
		})
	}
}

// BenchmarkMultiQueryShared compares shared composite filters against one
// independent cluster per query (the §7 future-work extension).
func BenchmarkMultiQueryShared(b *testing.B) {
	specs := []multiquery.QuerySpec{
		{Range: query.NewRange(100, 300), Tol: core.FractionTolerance{EpsPlus: 0.3, EpsMinus: 0.3}},
		{Range: query.NewRange(250, 500), Tol: core.FractionTolerance{EpsPlus: 0.2, EpsMinus: 0.2}},
		{Range: query.NewRange(700, 900), Tol: core.FractionTolerance{EpsPlus: 0.4, EpsMinus: 0.4}},
	}
	n, steps := 500, 30000
	mkMoves := func() ([]float64, [][2]float64) {
		rng := rand.New(rand.NewSource(3))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
		}
		cur := append([]float64(nil), vals...)
		moves := make([][2]float64, steps)
		for s := range moves {
			id := rng.Intn(n)
			cur[id] += rng.NormFloat64() * 50
			moves[s] = [2]float64{float64(id), cur[id]}
		}
		return vals, moves
	}
	b.Run("shared", func(b *testing.B) {
		reportMsgs(b, func() uint64 {
			vals, moves := mkMoves()
			m, err := multiquery.NewManager(vals, specs, 3)
			if err != nil {
				b.Fatal(err)
			}
			m.Initialize()
			for _, mv := range moves {
				m.Deliver(int(mv[0]), mv[1])
			}
			return m.Counter().Maintenance()
		})
	})
	b.Run("independent", func(b *testing.B) {
		reportMsgs(b, func() uint64 {
			vals, moves := mkMoves()
			var total uint64
			for _, spec := range specs {
				c := server.NewCluster(vals)
				p := core.NewFTNRP(c, spec.Range, core.FTNRPConfig{
					Tol: spec.Tol, Selection: core.SelectBoundaryNearest, Seed: 3,
				})
				c.SetProtocol(p)
				c.Initialize()
				for _, mv := range moves {
					c.Deliver(int(mv[0]), mv[1])
				}
				total += c.Counter().Maintenance()
			}
			return total
		})
	})
}

// BenchmarkDeliverThroughput measures raw event-processing speed of the
// cluster + FT-NRP stack (events per op).
func BenchmarkDeliverThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 5000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	c := server.NewCluster(vals)
	p := core.NewFTNRP(c, query.NewRange(400, 600), core.FTNRPConfig{
		Tol:       core.FractionTolerance{EpsPlus: 0.3, EpsMinus: 0.3},
		Selection: core.SelectBoundaryNearest,
	})
	c.SetProtocol(p)
	c.Initialize()
	cur := append([]float64(nil), vals...)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := i % n
		cur[id] += rng.NormFloat64() * 20
		c.Deliver(id, cur[id])
	}
}
