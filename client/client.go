// Package client is the Go client of the serving plane: batched,
// pipelined, reconnect-aware access to a netserve server over the
// internal/wire protocol (DESIGN.md §9).
//
// # Pipelining
//
// Ingest is asynchronous: it frames the batch, returns its sequence
// number, and lets up to Options.Inflight batches ride the connection
// unacknowledged. A background reader matches acks to sequence numbers as
// they return and hands them to Options.OnIngestAck — the hook an
// open-loop load generator uses to timestamp completions without ever
// blocking the send path. Synchronous calls (Drain, Report, lifecycle,
// Shutdown) flush the pipeline and wait for their own reply; because the
// server answers each connection in request order, a Drain ack also
// proves every earlier ingest batch was accepted or shed.
//
// # Reconnect
//
// With Options.Reconnect, a broken connection fails all in-flight calls
// (pipelined ingest acks are reported to OnIngestAck as StatusLost — the
// client cannot know whether the server applied them) and redials in the
// background with constant backoff. Calls made while the link is down
// fail fast with ErrDisconnected; an open-loop generator counts those as
// lost sends and keeps pace, a closed-loop caller retries after the link
// returns.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"adaptivefilters/internal/runtime"
	"adaptivefilters/internal/snapshot"
	"adaptivefilters/internal/wire"
)

// StatusLost is delivered to OnIngestAck for batches whose connection
// died before the ack returned: the client cannot know whether the server
// applied them. It is a client-side code, never on the wire.
const StatusLost byte = 0xFF

// ErrDisconnected fails calls made while the link is down (redialing or
// closed for good).
var ErrDisconnected = errors.New("client: not connected")

// ErrClosed fails calls made after Close.
var ErrClosed = errors.New("client: closed")

// Options tunes a Client. The zero value is usable.
type Options struct {
	// MaxFrame bounds frame payloads both ways (0 = wire.DefaultMaxFrame).
	MaxFrame int
	// Inflight caps unacknowledged pipelined ingest batches; Ingest
	// flushes and waits when the window is full (0 = 128).
	Inflight int
	// OnIngestAck, when set, observes every ingest batch's completion:
	// the batch's sequence number and wire.StatusOK, wire.StatusShed,
	// wire.StatusError or StatusLost. Called on the reader goroutine —
	// keep it cheap and do not call back into the Client from it.
	OnIngestAck func(seq uint64, status byte)
	// Reconnect redials a broken connection in the background.
	Reconnect bool
	// RetryWait is the pause between redial attempts (0 = 100ms).
	RetryWait time.Duration
}

func (o Options) inflight() int {
	if o.Inflight <= 0 {
		return 128
	}
	return o.Inflight
}

func (o Options) retryWait() time.Duration {
	if o.RetryWait <= 0 {
		return 100 * time.Millisecond
	}
	return o.RetryWait
}

// result carries a synchronous call's reply.
type result struct {
	ack    wire.Ack
	report *runtime.Report
	snap   []byte     // OpExportTenant payload
	stats  wire.Stats // OpStats payload
	err    error
}

// call is one request awaiting its reply.
type call struct {
	seq uint64
	op  byte
	ch  chan result // nil for pipelined ingest
}

// pendingRing is the FIFO of requests awaiting replies. The server answers
// each connection strictly in request order (ingest acks from the reader,
// control replies from the driver, never reordered), so the oldest pending
// call is always the one the next reply matches — a ring buffer replaces
// the seq→call map and its ever-growing-key rehash churn. The ring grows to
// the high-water inflight window and is then allocation-free.
type pendingRing struct {
	buf  []call
	head int
	size int
}

// push appends a call at the tail.
func (r *pendingRing) push(cl call) {
	if r.size == len(r.buf) {
		grown := make([]call, max(16, 2*len(r.buf)))
		for i := 0; i < r.size; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.size)%len(r.buf)] = cl
	r.size++
}

// peek returns the oldest pending call without removing it.
func (r *pendingRing) peek() (call, bool) {
	if r.size == 0 {
		return call{}, false
	}
	return r.buf[r.head], true
}

// pop removes and returns the oldest pending call.
func (r *pendingRing) pop() (call, bool) {
	if r.size == 0 {
		return call{}, false
	}
	cl := r.buf[r.head]
	r.buf[r.head] = call{} // release the result channel
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return cl, true
}

// dropTail rolls back the newest pending call if it carries seq — the
// unregister path for a frame that never made it onto the socket. Reports
// whether anything was removed (a disconnect may already have cleared it).
func (r *pendingRing) dropTail(seq uint64) bool {
	if r.size == 0 {
		return false
	}
	i := (r.head + r.size - 1) % len(r.buf)
	if r.buf[i].seq != seq {
		return false
	}
	r.buf[i] = call{}
	r.size--
	return true
}

// Stats counts ingest batch outcomes since Dial.
type Stats struct {
	Acked uint64 // StatusOK
	Shed  uint64 // StatusShed dropped by server backpressure
	Lost  uint64 // connection died before the ack
}

// Client is one connection to a netserve server. Methods are safe for
// concurrent use, though the intended shape is one ingest goroutine.
type Client struct {
	addr string
	opts Options

	// wmu serializes the send path: frame encoding, sequence assignment
	// and socket flushes.
	wmu sync.Mutex
	nc  net.Conn
	fw  *wire.FrameWriter
	seq uint64

	// pmu guards the pending ring, the ingest window and link state;
	// cond signals window space and state changes.
	pmu      sync.Mutex
	cond     *sync.Cond
	pending  pendingRing
	inflight int
	up       bool
	closed   bool
	stats    Stats

	wg sync.WaitGroup
}

// Dial connects, performs the wire handshake and starts the reader.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts}
	c.cond = sync.NewCond(&c.pmu)
	nc, fr, err := c.connect()
	if err != nil {
		return nil, err
	}
	c.nc = nc
	c.fw = wire.NewFrameWriter(nc, opts.MaxFrame)
	c.up = true
	c.wg.Add(1)
	go c.readLoop(fr)
	return c, nil
}

// connect dials and completes the Hello exchange on a fresh socket.
func (c *Client) connect() (net.Conn, *wire.FrameReader, error) {
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, nil, err
	}
	fw := wire.NewFrameWriter(nc, c.opts.MaxFrame)
	wire.EncodeHello(fw.Begin(), 0)
	if err := fw.End(); err == nil {
		err = fw.Flush()
	}
	if err != nil {
		nc.Close()
		return nil, nil, err
	}
	fr := wire.NewFrameReader(nc, c.opts.MaxFrame)
	r, err := fr.Next()
	if err != nil {
		nc.Close()
		return nil, nil, fmt.Errorf("client: handshake: %w", err)
	}
	hdr, err := wire.DecodeHeader(r)
	if err == nil && hdr.Op != wire.ReplyTo(wire.OpHello) {
		err = fmt.Errorf("client: handshake reply has op %d", hdr.Op)
	}
	if err == nil {
		var ack wire.HelloAck
		if ack, err = wire.DecodeHelloAck(r); err == nil && ack.Status != wire.StatusOK {
			err = fmt.Errorf("client: server refused hello: %s", ack.Msg)
		}
	}
	if err != nil {
		nc.Close()
		return nil, nil, err
	}
	return nc, fr, nil
}

// Close tears the client down: in-flight calls fail, the reader exits, no
// redial. Safe to call more than once.
func (c *Client) Close() error {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return nil
	}
	c.closed = true
	c.failPendingLocked(ErrClosed)
	nc := c.nc
	c.pmu.Unlock()
	if nc != nil {
		nc.Close()
	}
	c.wg.Wait()
	return nil
}

// Stats returns ingest outcome counts so far.
func (c *Client) Stats() Stats {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.stats
}

// failPendingLocked fails every outstanding call, oldest first; pmu held.
func (c *Client) failPendingLocked(err error) {
	for {
		cl, ok := c.pending.pop()
		if !ok {
			break
		}
		if cl.ch != nil {
			cl.ch <- result{err: err}
			continue
		}
		c.stats.Lost++
		if c.opts.OnIngestAck != nil {
			c.opts.OnIngestAck(cl.seq, StatusLost)
		}
	}
	c.inflight = 0
	c.up = false
	c.cond.Broadcast()
}

// readLoop matches replies to pending calls; on connection failure it
// fails in-flight work and, when Reconnect is set, redials until Close.
func (c *Client) readLoop(fr *wire.FrameReader) {
	defer c.wg.Done()
	for {
		err := c.readReplies(fr)
		c.pmu.Lock()
		c.failPendingLocked(err)
		if c.closed || !c.opts.Reconnect {
			c.closed = true
			c.cond.Broadcast()
			c.pmu.Unlock()
			return
		}
		c.pmu.Unlock()
		var nc net.Conn
		for {
			if nc, fr, err = c.connect(); err == nil {
				break
			}
			c.pmu.Lock()
			closed := c.closed
			c.pmu.Unlock()
			if closed {
				return
			}
			time.Sleep(c.opts.retryWait())
		}
		c.wmu.Lock()
		c.pmu.Lock()
		if c.closed {
			c.pmu.Unlock()
			c.wmu.Unlock()
			nc.Close()
			return
		}
		c.nc = nc
		c.fw = wire.NewFrameWriter(nc, c.opts.MaxFrame)
		c.up = true
		c.cond.Broadcast()
		c.pmu.Unlock()
		c.wmu.Unlock()
	}
}

// readReplies consumes one connection's reply stream until it breaks.
func (c *Client) readReplies(fr *wire.FrameReader) error {
	for {
		r, err := fr.Next()
		if err != nil {
			return err
		}
		hdr, err := wire.DecodeHeader(r)
		if err != nil {
			return err
		}
		// Replies arrive in request order, so the reply must match the
		// oldest pending call. A mismatch leaves the call in the ring for
		// failPendingLocked, so a waiting roundTrip still gets its error.
		c.pmu.Lock()
		cl, ok := c.pending.peek()
		if ok && cl.seq == hdr.Seq && hdr.Op == wire.ReplyTo(cl.op) {
			c.pending.pop()
		} else {
			ok = false
		}
		c.pmu.Unlock()
		if !ok {
			return fmt.Errorf("client: reply (op=%d seq=%d) matches no request", hdr.Op, hdr.Seq)
		}
		var res result
		switch cl.op {
		case wire.OpReport:
			res.report, res.ack, res.err = wire.DecodeReportReply(r)
		case wire.OpExportTenant:
			res.snap, res.ack, res.err = wire.DecodeExportTenantReply(r)
		case wire.OpStats:
			res.stats, res.ack, res.err = wire.DecodeStatsReply(r)
		default:
			res.ack, res.err = wire.DecodeAck(r)
		}
		if res.err != nil {
			if cl.ch != nil {
				cl.ch <- res
			}
			return res.err
		}
		if cl.ch != nil {
			cl.ch <- res
			continue
		}
		c.pmu.Lock()
		c.inflight--
		switch res.ack.Status {
		case wire.StatusShed:
			c.stats.Shed++
		default:
			c.stats.Acked++
		}
		c.cond.Signal()
		c.pmu.Unlock()
		if c.opts.OnIngestAck != nil {
			c.opts.OnIngestAck(hdr.Seq, res.ack.Status)
		}
	}
}

// register installs a pending call under a fresh sequence number. The
// caller must hold wmu (so the frame goes out after registration, and no
// reply can race ahead of it).
func (c *Client) register(cl call, countInflight bool) (uint64, error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	if !c.up {
		return 0, ErrDisconnected
	}
	c.seq++
	cl.seq = c.seq
	c.pending.push(cl)
	if countInflight {
		c.inflight++
	}
	return c.seq, nil
}

// unregister rolls back a registration whose frame never made it out. The
// caller still holds wmu, so the registration is necessarily the newest
// pending call (nothing can have registered behind it).
func (c *Client) unregister(seq uint64, countInflight bool) {
	c.pmu.Lock()
	if c.pending.dropTail(seq) && countInflight {
		c.inflight--
		c.cond.Signal()
	}
	c.pmu.Unlock()
}

// Ingest frames one event batch onto the pipeline and returns its
// sequence number without waiting for the ack. When the inflight window
// is full it flushes and blocks until space opens. The batch is encoded
// before return; the caller may reuse the slice immediately.
func (c *Client) Ingest(events []runtime.Event) (uint64, error) {
	// Wait for window space outside wmu so acks can drain.
	c.pmu.Lock()
	for c.up && !c.closed && c.inflight >= c.opts.inflight() {
		c.pmu.Unlock()
		if err := c.Flush(); err != nil {
			return 0, err
		}
		c.pmu.Lock()
		if c.up && !c.closed && c.inflight >= c.opts.inflight() {
			c.cond.Wait()
		}
	}
	c.pmu.Unlock()

	c.wmu.Lock()
	defer c.wmu.Unlock()
	seq, err := c.register(call{op: wire.OpIngest}, true)
	if err != nil {
		return 0, err
	}
	wire.EncodeIngest(c.fw.Begin(), seq, events)
	if err := c.fw.End(); err != nil {
		c.unregister(seq, true)
		return 0, err
	}
	return seq, nil
}

// Flush pushes buffered frames to the socket.
func (c *Client) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.pmu.Lock()
	up := c.up && !c.closed
	c.pmu.Unlock()
	if !up {
		return ErrDisconnected
	}
	return c.fw.Flush()
}

// roundTrip performs one synchronous request.
func (c *Client) roundTrip(op byte, encode func(p *snapshot.Writer, seq uint64)) (result, error) {
	ch := make(chan result, 1)
	c.wmu.Lock()
	seq, err := c.register(call{op: op, ch: ch}, false)
	if err != nil {
		c.wmu.Unlock()
		return result{}, err
	}
	encode(c.fw.Begin(), seq)
	if err := c.fw.End(); err == nil {
		err = c.fw.Flush()
	}
	if err != nil {
		c.wmu.Unlock()
		c.unregister(seq, false)
		return result{}, err
	}
	c.wmu.Unlock()
	res := <-ch
	if res.err != nil {
		return result{}, res.err
	}
	if err := res.ack.Err(); err != nil {
		return result{}, err
	}
	return res, nil
}

// Drain asks the server to apply everything ingested so far and waits for
// the barrier ack; it also proves every earlier pipelined batch on this
// connection was answered.
func (c *Client) Drain() error {
	_, err := c.roundTrip(wire.OpDrain, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeDrain(p, seq)
	})
	return err
}

// Report drains nothing by itself: call Drain first for a stable answer.
// The decoded report renders (Report.Text) byte-identically to an
// in-process run of the same node.
func (c *Client) Report() (*runtime.Report, error) {
	res, err := c.roundTrip(wire.OpReport, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeReportReq(p, seq)
	})
	if err != nil {
		return nil, err
	}
	return res.report, nil
}

// AddTenant admits a tenant and returns its slot id.
func (c *Client) AddTenant(spec wire.TenantSpec) (int, error) {
	res, err := c.roundTrip(wire.OpAddTenant, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeAddTenant(p, seq, spec)
	})
	return int(res.ack.Value), err
}

// RemoveTenant evicts tenant slot ti.
func (c *Client) RemoveTenant(ti int) error {
	_, err := c.roundTrip(wire.OpRemoveTenant, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeRemoveTenant(p, seq, ti)
	})
	return err
}

// AddQuery admits a standing query onto multi-query tenant ti and returns
// its slot id.
func (c *Client) AddQuery(ti int, q wire.QuerySpec) (int, error) {
	res, err := c.roundTrip(wire.OpAddQuery, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeAddQuery(p, seq, ti, q)
	})
	return int(res.ack.Value), err
}

// RemoveQuery evicts query slot qi of tenant ti.
func (c *Client) RemoveQuery(ti, qi int) error {
	_, err := c.roundTrip(wire.OpRemoveQuery, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeRemoveQuery(p, seq, ti, qi)
	})
	return err
}

// AddTenantLabeled admits a tenant under an explicit seed label and
// returns its slot id — the cluster placement layer's admission, which
// pins a tenant's randomness to its global id rather than the member's
// local counter.
func (c *Client) AddTenantLabeled(spec wire.TenantSpec, label int64) (int, error) {
	res, err := c.roundTrip(wire.OpAddTenantLabeled, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeAddTenantLabeled(p, seq, label, spec)
	})
	return int(res.ack.Value), err
}

// ExportTenant captures tenant ti's migration snapshot (the node drains
// first, so the bytes reflect every batch ingested before the call).
func (c *Client) ExportTenant(ti int) ([]byte, error) {
	res, err := c.roundTrip(wire.OpExportTenant, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeExportTenant(p, seq, ti)
	})
	return res.snap, err
}

// ImportTenant restores a tenant from an ExportTenant record and returns
// its new local slot id; spec must describe the exported tenant (see
// runtime.Node.ImportTenant).
func (c *Client) ImportTenant(spec wire.TenantSpec, snap []byte) (int, error) {
	res, err := c.roundTrip(wire.OpImportTenant, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeImportTenant(p, seq, spec, snap)
	})
	return int(res.ack.Value), err
}

// NodeStats returns the server node's load figures — the rebalancer's
// placement signal.
func (c *Client) NodeStats() (wire.Stats, error) {
	res, err := c.roundTrip(wire.OpStats, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeStatsReq(p, seq)
	})
	return res.stats, err
}

// Shutdown asks the server to stop, waits for the ack, then closes the
// client (suppressing any redial).
func (c *Client) Shutdown() error {
	_, err := c.roundTrip(wire.OpShutdown, func(p *snapshot.Writer, seq uint64) {
		wire.EncodeShutdown(p, seq)
	})
	c.Close()
	return err
}
