package client_test

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"adaptivefilters/client"
	"adaptivefilters/internal/netserve"
	"adaptivefilters/internal/protospec"
	"adaptivefilters/internal/runtime"
	"adaptivefilters/internal/sim"
	"adaptivefilters/internal/stream"
	"adaptivefilters/internal/wire"
)

func testSpecs() []wire.TenantSpec {
	initial := func(n int, seed int64) []float64 {
		rng := sim.NewRNG(seed)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Uniform(0, 1000)
		}
		return vals
	}
	return []wire.TenantSpec{
		{Name: "ft", Initial: initial(40, 3),
			Spec: protospec.Spec{Protocol: "ft-nrp", Lo: 300, Hi: 700, EpsPlus: 0.3, EpsMinus: 0.3}},
		{Name: "multi", Initial: initial(30, 5), Queries: []wire.QuerySpec{
			{Name: "qa", Spec: protospec.Spec{Protocol: "zt-nrp", Lo: 200, Hi: 500}},
			{Name: "qb", Spec: protospec.Spec{Protocol: "rtp", Q: 500, K: 4, R: 2}},
		}},
	}
}

func compile(t *testing.T, specs []wire.TenantSpec) []runtime.TenantSpec {
	t.Helper()
	out := make([]runtime.TenantSpec, len(specs))
	for i, ws := range specs {
		rs, err := ws.Runtime()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = rs
	}
	return out
}

// startServer serves a fresh node on an ephemeral port.
func startServer(t *testing.T, shards int) (*netserve.Server, *runtime.Node) {
	t.Helper()
	node, err := runtime.NewNode(runtime.Config{Shards: shards, Seed: 11}, compile(t, testSpecs()))
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := netserve.Serve(ln, node, netserve.Options{})
	t.Cleanup(func() {
		s.Close()
		s.Wait()
		node.Stop()
	})
	return s, node
}

func workload(events, batch int) [][]runtime.Event {
	rng := sim.NewRNG(77)
	var out [][]runtime.Event
	cur := make([]runtime.Event, 0, batch)
	for i := 0; i < events; i++ {
		cur = append(cur, runtime.Event{
			Tenant: rng.Intn(2), Stream: stream.ID(rng.Intn(30)), Value: rng.Uniform(0, 1000),
		})
		if len(cur) == batch {
			out = append(out, cur)
			cur = make([]runtime.Event, 0, batch)
		}
	}
	return out
}

// TestPipelinedIngestMatchesInProcess drives a full session — pipelined
// ingest, drain, report, lifecycle — and checks the report text equals an
// in-process twin's byte for byte.
func TestPipelinedIngestMatchesInProcess(t *testing.T) {
	s, _ := startServer(t, 2)

	local, err := runtime.NewNode(runtime.Config{Shards: 2, Seed: 11}, compile(t, testSpecs()))
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer local.Stop()

	var acks atomic.Uint64
	c, err := client.Dial(s.Addr().String(), client.Options{
		Inflight:    8,
		OnIngestAck: func(seq uint64, status byte) { acks.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batches := workload(3000, 64)
	for _, b := range batches {
		if _, err := c.Ingest(b); err != nil {
			t.Fatal(err)
		}
		if err := local.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := local.Drain(); err != nil {
		t.Fatal(err)
	}

	// The drain ack proves every earlier batch was answered first.
	if got := acks.Load(); got != uint64(len(batches)) {
		t.Fatalf("OnIngestAck saw %d batches, want %d", got, len(batches))
	}
	st := c.Stats()
	if st.Acked != uint64(len(batches)) || st.Shed != 0 || st.Lost != 0 {
		t.Fatalf("stats = %+v", st)
	}

	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Text(), local.Report().Text(); got != want {
		t.Fatalf("wire report diverges:\n got:\n%s\nwant:\n%s", got, want)
	}

	// Lifecycle through the client, mirrored locally.
	late := wire.TenantSpec{Name: "late", Initial: []float64{1, 2, 3, 4},
		Spec: protospec.Spec{Protocol: "zt-nrp", Lo: 2, Hi: 3}}
	ti, err := c.AddTenant(late)
	if err != nil {
		t.Fatal(err)
	}
	lspec, err := late.Runtime()
	if err != nil {
		t.Fatal(err)
	}
	lti, err := local.AddTenant(lspec)
	if err != nil || ti != lti {
		t.Fatalf("admission slots: wire %d local %d (%v)", ti, lti, err)
	}
	if err := c.RemoveQuery(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := local.RemoveQuery(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := local.Drain(); err != nil {
		t.Fatal(err)
	}
	rep, err = c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Text(), local.Report().Text(); got != want {
		t.Fatalf("wire report diverges after lifecycle:\n got:\n%s\nwant:\n%s", got, want)
	}

	// Error surfaces as an error, connection stays usable.
	if err := c.RemoveTenant(99); err == nil {
		t.Fatal("bad eviction succeeded")
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestReconnect kills the server under a live client and checks the
// client comes back by itself on a fresh server at the same address.
func TestReconnect(t *testing.T) {
	s1, node1 := startServer(t, 1)
	addr := s1.Addr().String()

	c, err := client.Dial(addr, client.Options{Reconnect: true, RetryWait: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	// Tear server 1 down; in-flight and new calls fail while the link is
	// down.
	s1.Close()
	s1.Wait()
	node1.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Drain(); err != nil {
			break // link noticed the outage
		}
		if time.Now().After(deadline) {
			t.Fatal("drain kept succeeding against a closed server")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Bring a fresh server up on the same address; the client must find it.
	node2, err := runtime.NewNode(runtime.Config{Shards: 1, Seed: 11}, compile(t, testSpecs()))
	if err != nil {
		t.Fatal(err)
	}
	if err := node2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s2 := netserve.Serve(ln, node2, netserve.Options{})
	t.Cleanup(func() {
		s2.Close()
		s2.Wait()
		node2.Stop()
	})

	for {
		err := c.Drain()
		if err == nil {
			break
		}
		if !errors.Is(err, client.ErrDisconnected) {
			t.Fatalf("drain while redialing: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Ingest([]runtime.Event{{Tenant: 0, Stream: 1, Value: 42}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdown checks the client-initiated server stop: ack received,
// server exits, client is closed (no redial storm).
func TestShutdown(t *testing.T) {
	s, _ := startServer(t, 1)
	c, err := client.Dial(s.Addr().String(), client.Options{Reconnect: true, RetryWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop")
	}
	if err := c.Drain(); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("drain after shutdown: %v, want ErrClosed", err)
	}
}

// TestIngestWindowBackpressure fills the pipeline window and checks
// Ingest still completes (flush + wait for acks opens space) rather than
// deadlocking.
func TestIngestWindowBackpressure(t *testing.T) {
	s, _ := startServer(t, 1)
	c, err := client.Dial(s.Addr().String(), client.Options{Inflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if _, err := c.Ingest([]runtime.Event{{Tenant: 0, Stream: stream.ID(i % 30), Value: float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Acked != 50 {
		t.Fatalf("stats = %+v, want 50 acked", st)
	}
}
