// Package adaptivefilters reproduces "Adaptive Stream Filters for
// Entity-based Queries with Non-Value Tolerance" (Cheng, Kao, Prabhakar,
// Kwan, Tu; VLDB 2005).
//
// The implementation lives under internal/: the paper's protocols in
// internal/core, the distributed-stream substrate in internal/sim,
// internal/stream, internal/server and internal/comm, the evaluation
// harness in internal/experiment, and the workload generators in
// internal/workload; the sharded multi-tenant serving layer is
// internal/runtime. See README.md for a tour and DESIGN.md for the system
// inventory, the design decisions behind the reproduced evaluation, and
// the Host/runtime layering.
//
// The root package only carries module-level documentation and the
// benchmark suite (bench_test.go) that regenerates every figure of the
// paper's evaluation section.
package adaptivefilters

// Version identifies the reproduction release.
const Version = "1.0.0"
